"""The paper's baseline estimator: predict the mean RSS per MAC address.

"In order to assess more elaborate estimators we used a baseline
estimator that always returns the mean per MAC address" — §III-B.  Its
RMSE (4.8107 dBm in the paper) is the bar every spatial model must
clear: beating it proves the estimator extracts *location* information,
not just per-AP averages.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dataset import REMDataset
from .base import Predictor

__all__ = ["MeanPerMacBaseline"]


class MeanPerMacBaseline(Predictor):
    """Predicts each sample's RSS as its AP's training mean."""

    PARAM_NAMES = ()
    name = "baseline-mean-per-mac"

    def __init__(self):
        super().__init__()
        self._means: Dict[int, float] = {}
        self._global_mean = 0.0

    def fit(self, train: REMDataset) -> "MeanPerMacBaseline":
        """Compute per-MAC and global training means."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._global_mean = float(train.rssi_dbm.mean())
        self._means = {}
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            self._means[int(mac_index)] = float(train.rssi_dbm[mask].mean())
        self._mark_fitted()
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Per-MAC training mean; global mean for unseen MACs."""
        self._require_fitted()
        return np.array(
            [
                self._means.get(int(idx), self._global_mean)
                for idx in data.mac_indices
            ]
        )
