"""The paper's baseline estimator: predict the mean RSS per MAC address.

"In order to assess more elaborate estimators we used a baseline
estimator that always returns the mean per MAC address" — §III-B.  Its
RMSE (4.8107 dBm in the paper) is the bar every spatial model must
clear: beating it proves the estimator extracts *location* information,
not just per-AP averages.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dataset import REMDataset
from .base import Predictor

__all__ = ["MeanPerMacBaseline"]


class MeanPerMacBaseline(Predictor):
    """Predicts each sample's RSS as its AP's training mean."""

    PARAM_NAMES = ()
    name = "baseline-mean-per-mac"

    def __init__(self):
        super().__init__()
        self._means: Dict[int, float] = {}
        self._means_table: np.ndarray = np.zeros(0)
        self._stds_table: np.ndarray = np.zeros(0)
        self._global_mean = 0.0
        self._global_std = 1.0

    def fit(self, train: REMDataset) -> "MeanPerMacBaseline":
        """Compute per-MAC and global training means."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._global_mean = float(train.rssi_dbm.mean())
        self._means = {}
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            self._means[int(mac_index)] = float(train.rssi_dbm[mask].mean())
        # Dense lookup table over the vocabulary for the batched paths
        # (vocabulary entries never observed in training keep the global
        # mean, matching the dict's .get() fallback).
        self._global_std = max(float(train.rssi_dbm.std()), 1e-6)
        self._means_table = np.full(train.n_macs, self._global_mean)
        self._stds_table = np.full(train.n_macs, self._global_std)
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            self._means_table[mac_index] = self._means[int(mac_index)]
            self._stds_table[mac_index] = max(
                float(train.rssi_dbm[mask].std()), 1e-6
            )
        self._mark_fitted(train)
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Per-MAC training mean; global mean for unseen MACs."""
        self._require_fitted()
        return self._lookup(data.mac_indices)

    def predict_points(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Vectorized table lookup (positions are irrelevant here)."""
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        return self._lookup(mac_indices)

    def predict_mac_grid(self, points: np.ndarray, mac_indices) -> np.ndarray:
        """Each MAC's field is a constant plane at its training mean."""
        self._require_fitted()
        points, macs = self._coerce_grid_query(points, mac_indices)
        return np.repeat(self._lookup(macs)[:, None], len(points), axis=1)

    def predict_points_std(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Each MAC's training RSS spread — position-independent.

        The baseline has no spatial structure, so its honest uncertainty
        is the scatter it averages over (global spread for unseen MACs).
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        out = np.full(mac_indices.shape, self._global_std)
        known = (mac_indices >= 0) & (mac_indices < len(self._stds_table))
        out[known] = self._stds_table[mac_indices[known]]
        return out

    def _lookup(self, mac_indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(mac_indices, dtype=int)
        out = np.full(indices.shape, self._global_mean)
        known = (indices >= 0) & (indices < len(self._means_table))
        out[known] = self._means_table[indices[known]]
        return out
