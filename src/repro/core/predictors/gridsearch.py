"""Hyper-parameter grid search with k-fold cross-validation.

The paper tunes every estimator "using a grid search considering an
exhaustive set of hyperparameters" with a validation set carved out of
the training data (§III-B).  This module provides the generic
machinery: parameter grids, seeded k-fold CV scored by RMSE, and
refit-on-full-train of the winner.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..dataset import REMDataset
from .base import Predictor
from .metrics import rmse

__all__ = ["ParamGrid", "CvResult", "GridSearchResult", "cross_validate", "grid_search"]


class ParamGrid:
    """Cartesian product over named parameter value lists."""

    def __init__(self, **param_values: Sequence[Any]):
        if not param_values:
            raise ValueError("empty parameter grid")
        self._names = tuple(param_values.keys())
        self._values = tuple(tuple(v) for v in param_values.values())
        for name, values in zip(self._names, self._values):
            if not values:
                raise ValueError(f"no values for parameter {name!r}")

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for combo in itertools.product(*self._values):
            yield dict(zip(self._names, combo))

    def __len__(self) -> int:
        size = 1
        for values in self._values:
            size *= len(values)
        return size


@dataclass
class CvResult:
    """Cross-validation outcome of one parameter combination."""

    params: Dict[str, Any]
    fold_rmses: List[float]

    @property
    def mean_rmse(self) -> float:
        """Mean RMSE across folds."""
        return float(np.mean(self.fold_rmses))

    @property
    def std_rmse(self) -> float:
        """Standard deviation of fold RMSEs."""
        return float(np.std(self.fold_rmses))


@dataclass
class GridSearchResult:
    """The full search outcome, ranked best-first."""

    best: Predictor
    best_params: Dict[str, Any]
    results: List[CvResult] = field(default_factory=list)

    def ranking(self) -> List[CvResult]:
        """All combinations, best (lowest mean RMSE) first."""
        return sorted(self.results, key=lambda r: r.mean_rmse)


def _kfold_indices(
    n: int, k: int, seed: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        validation = folds[i]
        training = np.concatenate([folds[j] for j in range(k) if j != i])
        yield training, validation


def cross_validate(
    predictor: Predictor,
    train: REMDataset,
    params: Dict[str, Any],
    k_folds: int = 4,
    seed: int = 13,
) -> CvResult:
    """k-fold CV of one parameter combination, scored by RMSE."""
    if k_folds < 2:
        raise ValueError(f"need at least 2 folds, got {k_folds}")
    fold_rmses: List[float] = []
    for train_idx, val_idx in _kfold_indices(len(train), k_folds, seed):
        model = predictor.clone(**params)
        model.fit(train.subset(train_idx))
        predictions = model.predict(train.subset(val_idx))
        fold_rmses.append(rmse(train.rssi_dbm[val_idx], predictions))
    return CvResult(params=dict(params), fold_rmses=fold_rmses)


def grid_search(
    predictor: Predictor,
    train: REMDataset,
    grid: ParamGrid,
    k_folds: int = 4,
    seed: int = 13,
) -> GridSearchResult:
    """Exhaustive CV over ``grid``; the winner is refit on all of train."""
    results = [
        cross_validate(predictor, train, params, k_folds=k_folds, seed=seed)
        for params in grid
    ]
    best_result = min(results, key=lambda r: r.mean_rmse)
    best = predictor.clone(**best_result.params)
    best.fit(train)
    return GridSearchResult(best=best, best_params=best_result.params, results=results)
