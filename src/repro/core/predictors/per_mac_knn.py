"""One k-NN estimator per MAC address (the paper's ensemble variant).

"As an intuitive alternative to assigning samples with different MAC
addresses a greater distance, we considered a kNN estimator per MAC
address ... reducing the feature set to only the x, y, z coordinates"
— §III-B.  Each AP gets its own spatial regressor trained on its own
samples; queries dispatch by MAC.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dataset import REMDataset
from .base import Predictor
from .knn import _inverse_distance_average, _minkowski_distances, _stable_topk

__all__ = ["PerMacKnnRegressor"]


class PerMacKnnRegressor(Predictor):
    """Per-MAC k-NN over coordinates only.

    Hyper-parameters mirror the base k-NN (the paper keeps them equal).
    MACs unseen in training fall back to the global training mean.
    """

    PARAM_NAMES = ("n_neighbors", "weights", "p")
    name = "knn-per-mac"
    supports_partial_fit = True

    def __init__(self, n_neighbors: int = 3, weights: str = "distance", p: float = 2.0):
        super().__init__()
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self.p = float(p)
        self._positions: Dict[int, np.ndarray] = {}
        self._targets: Dict[int, np.ndarray] = {}
        self._global_mean = 0.0

    # ------------------------------------------------------------------
    def fit(self, train: REMDataset) -> "PerMacKnnRegressor":
        """Partition training rows by MAC."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._global_mean = float(train.rssi_dbm.mean())
        self._positions = {}
        self._targets = {}
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            self._positions[int(mac_index)] = train.positions[mask]
            self._targets[int(mac_index)] = train.rssi_dbm[mask].astype(float)
        self._mark_fitted(train)
        return self

    def partial_fit(self, delta: REMDataset) -> "PerMacKnnRegressor":
        """Append delta rows to the per-MAC regressors.

        Touches only the MACs present in the delta; appending preserves
        row order, so the grown arrays equal a from-scratch fit's masked
        arrays bit for bit.  The global-mean fallback is recomputed over
        the full target array.
        """
        if not self._check_partial_fit(delta):
            return self
        self._extend_fitted(delta)
        assert self._train_rssi is not None
        self._global_mean = float(self._train_rssi.mean())
        # One stable sort groups delta rows by MAC (ascending row index
        # within each group, identical to a boolean-mask scan) instead
        # of one O(delta) mask per touched MAC.
        order = np.argsort(delta.mac_indices, kind="stable")
        groups, starts = np.unique(delta.mac_indices[order], return_index=True)
        bounds = np.append(starts, len(order))
        for g, mac_index in enumerate(groups):
            rows = order[starts[g] : bounds[g + 1]]
            key = int(mac_index)
            new_positions = delta.positions[rows]
            new_targets = delta.rssi_dbm[rows].astype(float)
            if key in self._positions:
                self._positions[key] = np.concatenate(
                    [self._positions[key], new_positions]
                )
                self._targets[key] = np.concatenate(
                    [self._targets[key], new_targets]
                )
            else:
                self._positions[key] = new_positions
                self._targets[key] = new_targets
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Dispatch each query to its MAC's spatial regressor."""
        self._require_fitted()
        return self.predict_points(data.positions, data.mac_indices)

    def predict_points(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Batched prediction: group queries by MAC, one search per group."""
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        out = np.full(len(points), self._global_mean)
        for mac_index in np.unique(mac_indices):
            mask = mac_indices == mac_index
            key = int(mac_index)
            if key not in self._positions:
                continue
            out[mask] = self._predict_for_mac(key, points[mask])
        return out

    def predict_points_std(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Disagreement + distance proxy over each MAC's own regressor.

        Unseen MACs report the global target spread (no spatial model
        exists for them at all — maximal uncertainty).
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        out = np.full(len(points), self._train_target_std)
        for mac_index in np.unique(mac_indices):
            key = int(mac_index)
            if key not in self._positions:
                continue
            mask = mac_indices == mac_index
            positions = self._positions[key]
            targets = self._targets[key]
            k = min(self.n_neighbors, len(targets))
            distances = _minkowski_distances(points[mask], positions, self.p)
            neighbor_idx, neighbor_dist = _stable_topk(distances, k)
            disagreement = targets[neighbor_idx].std(axis=1)
            mean_dist = neighbor_dist.mean(axis=1)
            sigma = self._train_target_std
            reach = sigma * mean_dist / (mean_dist + self.UNCERTAINTY_RANGE_M)
            out[mask] = np.sqrt(disagreement**2 + reach**2)
        return out

    # ------------------------------------------------------------------
    def _predict_for_mac(self, mac_index: int, queries: np.ndarray) -> np.ndarray:
        positions = self._positions[mac_index]
        targets = self._targets[mac_index]
        k = min(self.n_neighbors, len(targets))
        distances = _minkowski_distances(queries, positions, self.p)
        neighbor_idx, neighbor_dist = _stable_topk(distances, k)
        neighbor_y = targets[neighbor_idx]
        if self.weights == "uniform":
            return neighbor_y.mean(axis=1)
        return _inverse_distance_average(neighbor_dist, neighbor_y)
