"""Ordinary kriging per MAC address — the geostatistical extension.

REM literature standardly interpolates radio maps with kriging; the
paper's future work points toward "deriving the fundamental limitations
on the density of 3D REMs", for which kriging's variance estimates are
the natural tool.  This estimator is the reproduction's extension
beyond the paper's three model families.

Per MAC: fit an exponential variogram ``γ(h) = nugget + sill(1 -
exp(-h/range))`` to the empirical binned semivariogram, then solve the
ordinary-kriging system over the ``n_neighbors`` nearest samples for
each query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dataset import REMDataset
from .base import Predictor

__all__ = ["ExponentialVariogram", "OrdinaryKrigingRegressor", "fit_variogram"]

#: Query block size bounding the stacked-system memory footprint.
_BLOCK_ROWS = 2048


@dataclass(frozen=True)
class ExponentialVariogram:
    """γ(h) = nugget + sill · (1 − exp(−h / range))."""

    nugget: float
    sill: float
    range_m: float

    def __call__(self, h: np.ndarray) -> np.ndarray:
        """Semivariance at lag distance(s) ``h``."""
        h = np.asarray(h, dtype=float)
        return self.nugget + self.sill * (1.0 - np.exp(-h / max(self.range_m, 1e-9)))


def fit_variogram(
    positions: np.ndarray,
    values: np.ndarray,
    n_bins: int = 12,
    max_lag_m: Optional[float] = None,
) -> ExponentialVariogram:
    """Least-squares exponential fit to the empirical semivariogram.

    Falls back to a small-nugget default when there are too few pairs
    to estimate anything (single-sample MACs).
    """
    n = len(values)
    if n < 3:
        var = float(np.var(values)) if n > 1 else 1.0
        return ExponentialVariogram(nugget=0.1, sill=max(var, 0.5), range_m=1.0)
    diffs = positions[:, None, :] - positions[None, :, :]
    lags = np.sqrt(np.sum(diffs**2, axis=2))
    gammas = 0.5 * (values[:, None] - values[None, :]) ** 2
    iu = np.triu_indices(n, k=1)
    lag_flat, gamma_flat = lags[iu], gammas[iu]
    if max_lag_m is None:
        max_lag_m = float(lag_flat.max()) or 1.0
    edges = np.linspace(0.0, max_lag_m, n_bins + 1)
    centers, means = [], []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (lag_flat >= lo) & (lag_flat < hi)
        if mask.sum() >= 2:
            centers.append((lo + hi) / 2.0)
            means.append(float(gamma_flat[mask].mean()))
    if len(centers) < 3:
        var = float(np.var(values))
        return ExponentialVariogram(nugget=0.1, sill=max(var, 0.5), range_m=1.0)
    centers_arr = np.asarray(centers)
    means_arr = np.asarray(means)
    sill0 = float(np.var(values)) or 1.0
    best: Tuple[float, ExponentialVariogram] = (
        np.inf,
        ExponentialVariogram(0.1, sill0, 1.0),
    )
    # Coarse grid over range and nugget fraction; sill by least squares.
    for range_m in np.linspace(0.3, max_lag_m, 16):
        basis = 1.0 - np.exp(-centers_arr / range_m)
        for nugget_frac in (0.0, 0.1, 0.25, 0.5):
            nugget = nugget_frac * sill0
            resid_target = means_arr - nugget
            denom = float(basis @ basis)
            if denom <= 0:
                continue
            sill = max(float(basis @ resid_target) / denom, 1e-6)
            sse = float(np.sum((nugget + sill * basis - means_arr) ** 2))
            if sse < best[0]:
                best = (sse, ExponentialVariogram(nugget, sill, float(range_m)))
    return best[1]


class OrdinaryKrigingRegressor(Predictor):
    """Per-MAC ordinary kriging with a fitted exponential variogram."""

    PARAM_NAMES = ("n_neighbors", "n_bins")
    name = "ordinary-kriging"
    supports_partial_fit = True

    def __init__(self, n_neighbors: int = 16, n_bins: int = 12):
        super().__init__()
        if n_neighbors < 2:
            raise ValueError(f"n_neighbors must be >= 2, got {n_neighbors}")
        self.n_neighbors = int(n_neighbors)
        self.n_bins = int(n_bins)
        self._models: Dict[
            int, Tuple[np.ndarray, np.ndarray, ExponentialVariogram]
        ] = {}
        self._global_mean = 0.0

    # ------------------------------------------------------------------
    def fit(self, train: REMDataset) -> "OrdinaryKrigingRegressor":
        """Fit one variogram per MAC over its sample cloud."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._global_mean = float(train.rssi_dbm.mean())
        self._models = {}
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            positions = train.positions[mask]
            values = train.rssi_dbm[mask].astype(float)
            variogram = fit_variogram(positions, values, n_bins=self.n_bins)
            self._models[int(mac_index)] = (positions, values, variogram)
        self._mark_fitted(train)
        return self

    def partial_fit(self, delta: REMDataset) -> "OrdinaryKrigingRegressor":
        """Refresh only the per-MAC models the delta touches.

        Each touched MAC's sample cloud is extended (appending preserves
        row order, so the arrays equal a full fit's masked arrays bit
        for bit) and its variogram re-estimated over the grown cloud;
        the other MACs keep their fitted models untouched — that is
        where the speedup over a from-scratch refit comes from, since a
        cadence delta typically observes a handful of APs while the
        variogram fit is quadratic in each MAC's sample count.
        """
        if not self._check_partial_fit(delta):
            return self
        self._extend_fitted(delta)
        assert self._train_rssi is not None
        self._global_mean = float(self._train_rssi.mean())
        for mac_index in np.unique(delta.mac_indices):
            mask = delta.mac_indices == mac_index
            key = int(mac_index)
            if key in self._models:
                old_positions, old_values, _ = self._models[key]
                positions = np.concatenate([old_positions, delta.positions[mask]])
                values = np.concatenate(
                    [old_values, delta.rssi_dbm[mask].astype(float)]
                )
            else:
                positions = delta.positions[mask]
                values = delta.rssi_dbm[mask].astype(float)
            variogram = fit_variogram(positions, values, n_bins=self.n_bins)
            self._models[key] = (positions, values, variogram)
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Kriging estimate per query (variance available via predict_std)."""
        self._require_fitted()
        means, _ = self._predict_with_std(data)
        return means

    def predict_std(self, data: REMDataset) -> np.ndarray:
        """Kriging standard deviation per query (model uncertainty)."""
        self._require_fitted()
        _, stds = self._predict_with_std(data)
        return stds

    def predict_points(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Batched prediction: one stacked kriging solve per MAC group."""
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        means, _ = self._predict_arrays_with_std(points, mac_indices)
        return means

    def predict_points_std(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Native kriging standard deviation from the batched solve.

        MACs without a fitted model report the global target spread
        (consistent with the base-class unseen-MAC convention).
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        _, stds = self._predict_arrays_with_std(points, mac_indices)
        unknown = ~np.isin(mac_indices, list(self._models))
        if unknown.any():
            stds = stds.copy()
            stds[unknown] = self._train_target_std
        return stds

    # ------------------------------------------------------------------
    def _predict_with_std(self, data: REMDataset) -> Tuple[np.ndarray, np.ndarray]:
        return self._predict_arrays_with_std(data.positions, data.mac_indices)

    def _predict_arrays_with_std(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        means = np.full(len(points), self._global_mean)
        stds = np.zeros(len(points))
        for mac_index in np.unique(mac_indices):
            key = int(mac_index)
            mask = mac_indices == mac_index
            if key not in self._models:
                continue
            positions, values, variogram = self._models[key]
            means[mask], stds[mask] = self._krige_block(
                points[mask], positions, values, variogram
            )
        return means, stds

    def _krige_block(
        self,
        queries: np.ndarray,
        positions: np.ndarray,
        values: np.ndarray,
        variogram: ExponentialVariogram,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Solve the ordinary-kriging system for a block of queries.

        The per-query ``(k+1, k+1)`` systems are stacked and handed to
        one batched ``np.linalg.solve`` call; singular batches fall back
        to row-wise least squares (the legacy behavior).
        """
        n_queries = len(queries)
        n = len(values)
        if n == 1:
            sill_std = float(np.sqrt(max(variogram.sill, 0.0)))
            return np.full(n_queries, float(values[0])), np.full(n_queries, sill_std)
        k = min(self.n_neighbors, n)
        out_means = np.empty(n_queries)
        out_stds = np.empty(n_queries)
        for start in range(0, n_queries, _BLOCK_ROWS):
            sl = slice(start, min(start + _BLOCK_ROWS, n_queries))
            block = queries[sl]
            q = len(block)
            dists = np.linalg.norm(
                block[:, None, :] - positions[None, :, :], axis=2
            )
            nearest = np.argpartition(dists, k - 1, axis=1)[:, :k]
            pts = positions[nearest]  # (q, k, 3)
            vals = values[nearest]  # (q, k)
            # Ordinary kriging systems with a Lagrange multiplier.
            pair_lags = np.linalg.norm(
                pts[:, :, None, :] - pts[:, None, :, :], axis=3
            )
            a = np.zeros((q, k + 1, k + 1))
            a[:, :k, :k] = variogram(pair_lags)
            a[:, k, :k] = 1.0
            a[:, :k, k] = 1.0
            b = np.zeros((q, k + 1))
            b[:, :k] = variogram(np.take_along_axis(dists, nearest, axis=1))
            b[:, k] = 1.0
            try:
                solution = np.linalg.solve(a, b[..., None])[..., 0]
            except np.linalg.LinAlgError:
                solution = np.empty((q, k + 1))
                for i in range(q):
                    try:
                        solution[i] = np.linalg.solve(a[i], b[i])
                    except np.linalg.LinAlgError:
                        solution[i], *_ = np.linalg.lstsq(a[i], b[i], rcond=None)
            weights = solution[:, :k]
            out_means[sl] = np.sum(weights * vals, axis=1)
            variance = np.sum(weights * b[:, :k], axis=1) + solution[:, k]
            out_stds[sl] = np.sqrt(np.maximum(variance, 0.0))
        return out_means, out_stds
