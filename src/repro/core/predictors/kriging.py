"""Ordinary kriging per MAC address — the geostatistical extension.

REM literature standardly interpolates radio maps with kriging; the
paper's future work points toward "deriving the fundamental limitations
on the density of 3D REMs", for which kriging's variance estimates are
the natural tool.  This estimator is the reproduction's extension
beyond the paper's three model families.

Per MAC: fit an exponential variogram ``γ(h) = nugget + sill(1 -
exp(-h/range))`` to the empirical binned semivariogram, then solve the
ordinary-kriging system over the ``n_neighbors`` nearest samples for
each query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dataset import REMDataset
from .base import Predictor

__all__ = ["ExponentialVariogram", "OrdinaryKrigingRegressor", "fit_variogram"]


@dataclass(frozen=True)
class ExponentialVariogram:
    """γ(h) = nugget + sill · (1 − exp(−h / range))."""

    nugget: float
    sill: float
    range_m: float

    def __call__(self, h: np.ndarray) -> np.ndarray:
        """Semivariance at lag distance(s) ``h``."""
        h = np.asarray(h, dtype=float)
        return self.nugget + self.sill * (1.0 - np.exp(-h / max(self.range_m, 1e-9)))


def fit_variogram(
    positions: np.ndarray,
    values: np.ndarray,
    n_bins: int = 12,
    max_lag_m: Optional[float] = None,
) -> ExponentialVariogram:
    """Least-squares exponential fit to the empirical semivariogram.

    Falls back to a small-nugget default when there are too few pairs
    to estimate anything (single-sample MACs).
    """
    n = len(values)
    if n < 3:
        var = float(np.var(values)) if n > 1 else 1.0
        return ExponentialVariogram(nugget=0.1, sill=max(var, 0.5), range_m=1.0)
    diffs = positions[:, None, :] - positions[None, :, :]
    lags = np.sqrt(np.sum(diffs**2, axis=2))
    gammas = 0.5 * (values[:, None] - values[None, :]) ** 2
    iu = np.triu_indices(n, k=1)
    lag_flat, gamma_flat = lags[iu], gammas[iu]
    if max_lag_m is None:
        max_lag_m = float(lag_flat.max()) or 1.0
    edges = np.linspace(0.0, max_lag_m, n_bins + 1)
    centers, means = [], []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (lag_flat >= lo) & (lag_flat < hi)
        if mask.sum() >= 2:
            centers.append((lo + hi) / 2.0)
            means.append(float(gamma_flat[mask].mean()))
    if len(centers) < 3:
        var = float(np.var(values))
        return ExponentialVariogram(nugget=0.1, sill=max(var, 0.5), range_m=1.0)
    centers_arr = np.asarray(centers)
    means_arr = np.asarray(means)
    sill0 = float(np.var(values)) or 1.0
    best: Tuple[float, ExponentialVariogram] = (np.inf, ExponentialVariogram(0.1, sill0, 1.0))
    # Coarse grid over range and nugget fraction; sill by least squares.
    for range_m in np.linspace(0.3, max_lag_m, 16):
        basis = 1.0 - np.exp(-centers_arr / range_m)
        for nugget_frac in (0.0, 0.1, 0.25, 0.5):
            nugget = nugget_frac * sill0
            resid_target = means_arr - nugget
            denom = float(basis @ basis)
            if denom <= 0:
                continue
            sill = max(float(basis @ resid_target) / denom, 1e-6)
            sse = float(np.sum((nugget + sill * basis - means_arr) ** 2))
            if sse < best[0]:
                best = (sse, ExponentialVariogram(nugget, sill, float(range_m)))
    return best[1]


class OrdinaryKrigingRegressor(Predictor):
    """Per-MAC ordinary kriging with a fitted exponential variogram."""

    PARAM_NAMES = ("n_neighbors", "n_bins")
    name = "ordinary-kriging"

    def __init__(self, n_neighbors: int = 16, n_bins: int = 12):
        super().__init__()
        if n_neighbors < 2:
            raise ValueError(f"n_neighbors must be >= 2, got {n_neighbors}")
        self.n_neighbors = int(n_neighbors)
        self.n_bins = int(n_bins)
        self._models: Dict[int, Tuple[np.ndarray, np.ndarray, ExponentialVariogram]] = {}
        self._global_mean = 0.0

    # ------------------------------------------------------------------
    def fit(self, train: REMDataset) -> "OrdinaryKrigingRegressor":
        """Fit one variogram per MAC over its sample cloud."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._global_mean = float(train.rssi_dbm.mean())
        self._models = {}
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            positions = train.positions[mask]
            values = train.rssi_dbm[mask].astype(float)
            variogram = fit_variogram(positions, values, n_bins=self.n_bins)
            self._models[int(mac_index)] = (positions, values, variogram)
        self._mark_fitted()
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Kriging estimate per query (variance available via predict_std)."""
        self._require_fitted()
        means, _ = self._predict_with_std(data)
        return means

    def predict_std(self, data: REMDataset) -> np.ndarray:
        """Kriging standard deviation per query (model uncertainty)."""
        self._require_fitted()
        _, stds = self._predict_with_std(data)
        return stds

    # ------------------------------------------------------------------
    def _predict_with_std(self, data: REMDataset) -> Tuple[np.ndarray, np.ndarray]:
        means = np.full(len(data), self._global_mean)
        stds = np.zeros(len(data))
        for mac_index in np.unique(data.mac_indices):
            key = int(mac_index)
            mask = data.mac_indices == mac_index
            if key not in self._models:
                continue
            positions, values, variogram = self._models[key]
            for row in np.where(mask)[0]:
                means[row], stds[row] = self._krige_point(
                    data.positions[row], positions, values, variogram
                )
        return means, stds

    def _krige_point(
        self,
        query: np.ndarray,
        positions: np.ndarray,
        values: np.ndarray,
        variogram: ExponentialVariogram,
    ) -> Tuple[float, float]:
        n = len(values)
        if n == 1:
            return float(values[0]), float(np.sqrt(max(variogram.sill, 0.0)))
        k = min(self.n_neighbors, n)
        dists = np.linalg.norm(positions - query, axis=1)
        nearest = np.argpartition(dists, k - 1)[:k]
        pts = positions[nearest]
        vals = values[nearest]
        # Ordinary kriging system with a Lagrange multiplier.
        pair_lags = np.linalg.norm(pts[:, None, :] - pts[None, :, :], axis=2)
        gamma_matrix = variogram(pair_lags)
        a = np.zeros((k + 1, k + 1))
        a[:k, :k] = gamma_matrix
        a[k, :k] = 1.0
        a[:k, k] = 1.0
        b = np.zeros(k + 1)
        b[:k] = variogram(dists[nearest])
        b[k] = 1.0
        try:
            solution = np.linalg.solve(a, b)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(a, b, rcond=None)
        weights = solution[:k]
        mean = float(weights @ vals)
        variance = float(weights @ b[:k] + solution[k])
        return mean, float(np.sqrt(max(variance, 0.0)))
