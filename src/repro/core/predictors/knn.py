"""k-nearest-neighbors RSS regression (the paper's main estimator family).

The features are the 3-D coordinates plus the one-hot encoded MAC
address; including the one-hot bits makes samples from *different* APs
at least ``sqrt(2) * onehot_scale`` apart, so neighbors are effectively
searched within the same AP first.  The paper evaluates:

* the grid-searched base configuration — ``n_neighbors=3``,
  ``weights="distance"``, Minkowski ``p=2`` (Euclidean);
* the variant with the one-hot features multiplied by 3 and
  ``n_neighbors=16`` (its best performer at 4.4186 dBm RMSE).

Implemented directly on numpy (no scikit-learn available offline):
brute-force Minkowski distances, chunked to bound memory.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dataset import REMDataset
from .base import Predictor

__all__ = ["KnnRegressor"]

_CHUNK_ROWS = 512


def _minkowski_distances(a: np.ndarray, b: np.ndarray, p: float) -> np.ndarray:
    """Pairwise Minkowski-p distances between rows of ``a`` and ``b``."""
    if p == 2.0:
        # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b  (fast path)
        aa = np.sum(a * a, axis=1)[:, None]
        bb = np.sum(b * b, axis=1)[None, :]
        sq = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
        return np.sqrt(sq)
    diff = np.abs(a[:, None, :] - b[None, :, :])
    return np.power(np.sum(np.power(diff, p), axis=2), 1.0 / p)


class KnnRegressor(Predictor):
    """Brute-force k-NN regression over [x, y, z, one-hot(MAC)] features.

    Parameters
    ----------
    n_neighbors:
        Number of neighbors (the paper grid-searches 3 and 16).
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance weighting; an
        exact feature match takes all the weight, like scikit-learn).
    p:
        Minkowski exponent (``metric=minkowski, p=2`` → Euclidean).
    onehot_scale:
        Multiplier on the one-hot MAC features (the paper's factor 3).
    """

    PARAM_NAMES = ("n_neighbors", "weights", "p", "onehot_scale")
    name = "knn"

    def __init__(
        self,
        n_neighbors: int = 3,
        weights: str = "distance",
        p: float = 2.0,
        onehot_scale: float = 1.0,
    ):
        super().__init__()
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        if p < 1:
            raise ValueError(f"Minkowski p must be >= 1, got {p}")
        if onehot_scale < 0:
            raise ValueError(f"onehot_scale must be >= 0, got {onehot_scale}")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self.p = float(p)
        self.onehot_scale = float(onehot_scale)
        self._train_features: Optional[np.ndarray] = None
        self._train_targets: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, train: REMDataset) -> "KnnRegressor":
        """Memorize the training features and targets."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._train_features = train.features(self.onehot_scale)
        self._train_targets = train.rssi_dbm.astype(float).copy()
        self._mark_fitted()
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Weighted neighbor average for every query row."""
        self._require_fitted()
        queries = data.features(self.onehot_scale)
        out = np.empty(len(data))
        for start in range(0, len(data), _CHUNK_ROWS):
            chunk = queries[start : start + _CHUNK_ROWS]
            out[start : start + _CHUNK_ROWS] = self._predict_chunk(chunk)
        return out

    # ------------------------------------------------------------------
    def _predict_chunk(self, queries: np.ndarray) -> np.ndarray:
        assert self._train_features is not None and self._train_targets is not None
        k = min(self.n_neighbors, len(self._train_targets))
        distances = _minkowski_distances(queries, self._train_features, self.p)
        neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
        rows = np.arange(len(queries))[:, None]
        neighbor_dist = distances[rows, neighbor_idx]
        neighbor_y = self._train_targets[neighbor_idx]
        if self.weights == "uniform":
            return neighbor_y.mean(axis=1)
        # Inverse-distance weights with the exact-match convention:
        # rows containing zero distances average only the exact matches.
        out = np.empty(len(queries))
        zero_mask = neighbor_dist <= 1e-12
        has_zero = zero_mask.any(axis=1)
        with np.errstate(divide="ignore"):
            w = 1.0 / neighbor_dist
        for i in range(len(queries)):
            if has_zero[i]:
                out[i] = neighbor_y[i][zero_mask[i]].mean()
            else:
                wi = w[i]
                out[i] = float(np.sum(wi * neighbor_y[i]) / np.sum(wi))
        return out
