"""k-nearest-neighbors RSS regression (the paper's main estimator family).

The features are the 3-D coordinates plus the one-hot encoded MAC
address; including the one-hot bits makes samples from *different* APs
at least ``sqrt(2) * onehot_scale`` apart, so neighbors are effectively
searched within the same AP first.  The paper evaluates:

* the grid-searched base configuration — ``n_neighbors=3``,
  ``weights="distance"``, Minkowski ``p=2`` (Euclidean);
* the variant with the one-hot features multiplied by 3 and
  ``n_neighbors=16`` (its best performer at 4.4186 dBm RMSE).

Implemented directly on numpy (no scikit-learn available offline):
brute-force Minkowski distances, chunked to bound memory.

The batched fast path exploits the one-hot structure analytically: for
any Minkowski exponent ``p``, the distance between a query of MAC ``m``
and a training sample of MAC ``m'`` satisfies

    d^p = d_xyz^p + 2 * onehot_scale^p * [m != m'],

so instead of forming the full ``(3 + n_macs)``-dimensional feature
matrix per MAC, :meth:`KnnRegressor.predict_mac_grid` computes the
3-D powered distance matrix **once** and adds the constant cross-MAC
penalty per MAC — one small matrix instead of 73 wide ones.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..dataset import REMDataset
from .base import Predictor

__all__ = ["KnnRegressor"]

_CHUNK_ROWS = 512
#: Larger chunks for the grid path: the per-chunk matrix is reused
#: across every MAC, so python overhead dominates at small sizes.
_GRID_CHUNK_ROWS = 4096


def _squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances via the quadratic expansion.

    ``||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` cancels catastrophically
    at coincident points, leaving a BLAS-batch-dependent residual of
    order ``eps * (||a||^2 + ||b||^2)``; such residuals are snapped to
    exact zero so the exact-match convention downstream fires
    identically in every path regardless of chunk size.
    """
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    scale = aa + bb
    sq = np.maximum(scale - 2.0 * (a @ b.T), 0.0)
    sq[sq <= 1e-12 * scale] = 0.0
    return sq


def _minkowski_distances(a: np.ndarray, b: np.ndarray, p: float) -> np.ndarray:
    """Pairwise Minkowski-p distances between rows of ``a`` and ``b``."""
    if p == 2.0:
        return np.sqrt(_squared_distances(a, b))
    diff = np.abs(a[:, None, :] - b[None, :, :])
    return np.power(np.sum(np.power(diff, p), axis=2), 1.0 / p)


def _powered_distances(a: np.ndarray, b: np.ndarray, p: float) -> np.ndarray:
    """Pairwise Minkowski-p distances **raised to p** (monotone proxy)."""
    if p == 2.0:
        return _squared_distances(a, b)
    diff = np.abs(a[:, None, :] - b[None, :, :])
    return np.sum(np.power(diff, p), axis=2)


#: Relative tolerance for k-th-neighbor boundary ties.  Values this
#: close are either genuine duplicates (every beacon of one scan shares
#: that scan's position estimate, so cross-MAC distances collide) or
#: representation noise: the legacy 60-dim feature path places each
#: MAC's one-hot term at a different column of its norm summation,
#: splitting exact ties into ±1-ulp subgroups.
_TIE_RTOL = 1e-9


def _stable_topk(powered: np.ndarray, k: int):
    """Row-wise indices/values of the ``k`` smallest entries.

    Ties at the k-th-neighbor boundary (within ``_TIE_RTOL`` relative)
    are broken by **lowest column index** — a deterministic convention,
    unlike raw ``argpartition`` whose introselect pivots make tie
    resolution depend on floating-point noise elsewhere in the row.
    """
    n, m = powered.shape
    if k >= m:
        idx = np.broadcast_to(np.arange(m), powered.shape)
        return idx, powered
    part = np.argpartition(powered, k - 1, axis=1)[:, :k]
    thresh = np.take_along_axis(powered, part, axis=1).max(axis=1, keepdims=True)
    eps = _TIE_RTOL * thresh + 1e-15
    less = powered < thresh - eps
    need = k - less.sum(axis=1, keepdims=True)
    tied = np.abs(powered - thresh) <= eps
    mask = less | (tied & (np.cumsum(tied, axis=1) <= need))
    idx = np.nonzero(mask)[1].reshape(n, k)
    return idx, np.take_along_axis(powered, idx, axis=1)


def _inverse_distance_average(
    neighbor_dist: np.ndarray, neighbor_y: np.ndarray
) -> np.ndarray:
    """Row-wise inverse-distance weighted average with the exact-match
    convention: rows containing zero distances average only the exact
    matches (scikit-learn's behavior)."""
    zero_mask = neighbor_dist <= 1e-12
    has_zero = zero_mask.any(axis=1)
    with np.errstate(divide="ignore"):
        w = 1.0 / neighbor_dist
    if has_zero.any():
        w[has_zero] = zero_mask[has_zero].astype(float)
    return np.sum(w * neighbor_y, axis=1) / np.sum(w, axis=1)


class KnnRegressor(Predictor):
    """Brute-force k-NN regression over [x, y, z, one-hot(MAC)] features.

    Parameters
    ----------
    n_neighbors:
        Number of neighbors (the paper grid-searches 3 and 16).
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance weighting; an
        exact feature match takes all the weight, like scikit-learn).
    p:
        Minkowski exponent (``metric=minkowski, p=2`` → Euclidean).
    onehot_scale:
        Multiplier on the one-hot MAC features (the paper's factor 3).
    """

    PARAM_NAMES = ("n_neighbors", "weights", "p", "onehot_scale")
    name = "knn"
    supports_partial_fit = True

    def __init__(
        self,
        n_neighbors: int = 3,
        weights: str = "distance",
        p: float = 2.0,
        onehot_scale: float = 1.0,
    ):
        super().__init__()
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        if p < 1:
            raise ValueError(f"Minkowski p must be >= 1, got {p}")
        if onehot_scale < 0:
            raise ValueError(f"onehot_scale must be >= 0, got {onehot_scale}")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self.p = float(p)
        self.onehot_scale = float(onehot_scale)
        self._train_features: Optional[np.ndarray] = None
        self._n_train_macs = 0
        self._train_targets: Optional[np.ndarray] = None
        self._train_positions: Optional[np.ndarray] = None
        self._train_macs: Optional[np.ndarray] = None
        self._mac_columns: dict = {}

    # ------------------------------------------------------------------
    def fit(self, train: REMDataset) -> "KnnRegressor":
        """Memorize the training features and targets.

        The dense one-hot feature matrix only serves the legacy
        :meth:`predict` path, so it is materialized lazily (from the
        arrays copied here, preserving the snapshot-at-fit contract) —
        fits that are consumed through the batched point/grid APIs
        (REM builds, online refits, uncertainty scoring) never pay
        for it.
        """
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._train_features = None
        self._n_train_macs = train.n_macs
        self._train_targets = train.rssi_dbm.astype(float).copy()
        self._train_positions = np.ascontiguousarray(
            train.positions.astype(float)
        )
        self._train_macs = train.mac_indices.astype(int).copy()
        self._mac_columns = {
            int(mac): np.flatnonzero(self._train_macs == mac)
            for mac in np.unique(self._train_macs)
        }
        self._mark_fitted(train)
        return self

    def partial_fit(self, delta: REMDataset) -> "KnnRegressor":
        """Append delta rows to the structure-of-arrays training buffers.

        Appending preserves row order, so the grown target/position/MAC
        arrays equal a from-scratch fit's bit for bit.  Existing
        ``_mac_columns`` index arrays stay valid (indices are append-
        only); MACs present in the delta extend theirs with the new row
        offsets.  The lazily-built dense feature matrix is invalidated
        and rebuilt on the next legacy :meth:`predict` call.
        """
        if not self._check_partial_fit(delta):
            return self
        assert self._train_targets is not None
        n_old = len(self._train_targets)
        self._train_features = None
        self._train_targets = np.concatenate(
            [self._train_targets, delta.rssi_dbm.astype(float)]
        )
        self._train_positions = np.ascontiguousarray(
            np.concatenate(
                [self._train_positions, delta.positions.astype(float)]
            )
        )
        delta_macs = delta.mac_indices.astype(int)
        self._train_macs = np.concatenate([self._train_macs, delta_macs])
        # One stable sort groups the delta rows by MAC; within a group
        # the stable order is ascending row index, so each group equals
        # the per-MAC ``flatnonzero`` scan (71 MACs would make per-MAC
        # scans the dominant refit cost) bit for bit.
        order = np.argsort(delta_macs, kind="stable")
        groups, starts = np.unique(delta_macs[order], return_index=True)
        bounds = np.append(starts, len(order))
        for g, mac_index in enumerate(groups):
            key = int(mac_index)
            new_columns = n_old + order[starts[g] : bounds[g + 1]]
            old_columns = self._mac_columns.get(key)
            if old_columns is None:
                self._mac_columns[key] = new_columns
            else:
                self._mac_columns[key] = np.concatenate(
                    [old_columns, new_columns]
                )
        self._extend_fitted(delta)
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Weighted neighbor average for every query row."""
        self._require_fitted()
        queries = data.features(self.onehot_scale)
        out = np.empty(len(data))
        for start in range(0, len(data), _CHUNK_ROWS):
            chunk = queries[start : start + _CHUNK_ROWS]
            out[start : start + _CHUNK_ROWS] = self._predict_chunk(chunk)
        return out

    # ------------------------------------------------------------------
    # batched fast paths
    # ------------------------------------------------------------------
    def predict_points(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Batched prediction via the partitioned-penalty decomposition."""
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        assert self._train_macs is not None
        out = np.empty(len(points))
        for start in range(0, len(points), _GRID_CHUNK_ROWS):
            sl = slice(start, min(start + _GRID_CHUNK_ROWS, len(points)))
            base = _powered_distances(points[sl], self._train_positions, self.p)
            global_idx, global_pow = self._global_candidates(base)
            chunk_macs = mac_indices[sl]
            chunk_out = out[sl]
            for mac_index in np.unique(chunk_macs):
                rows = chunk_macs == mac_index
                chunk_out[rows] = self._reduce_for_mac(
                    base[rows], global_idx[rows], global_pow[rows], int(mac_index)
                )
        return out

    def predict_points_std(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Neighbor-disagreement uncertainty proxy.

        Combines, in quadrature, the spread of the selected neighbors'
        targets (model disagreement) with the saturating mean-neighbor-
        distance term of the base class (extrapolation risk) — k-NN
        fields are flat far from data, so distance must contribute or
        unexplored space would look certain.
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        assert self._train_macs is not None
        out = np.empty(len(points))
        for start in range(0, len(points), _GRID_CHUNK_ROWS):
            sl = slice(start, min(start + _GRID_CHUNK_ROWS, len(points)))
            base = _powered_distances(points[sl], self._train_positions, self.p)
            global_idx, global_pow = self._global_candidates(base)
            chunk_macs = mac_indices[sl]
            chunk_out = out[sl]
            for mac_index in np.unique(chunk_macs):
                rows = chunk_macs == mac_index
                chunk_out[rows] = self._std_for_mac(
                    base[rows], global_idx[rows], global_pow[rows], int(mac_index)
                )
        return out

    def uncertainty_grid(
        self, points: np.ndarray, mac_indices: Sequence[int]
    ) -> np.ndarray:
        """One shared 3-D distance matrix serves every MAC's std field.

        Same per-MAC numbers as stacked :meth:`predict_points_std`
        calls (both run :meth:`_std_for_mac` over the same penalty
        decomposition), but the powered distance matrix and its global
        candidates — the expensive half of a full-vocabulary
        uncertainty query, which the active planner issues every round
        — are computed once per chunk instead of once per MAC.
        """
        self._require_fitted()
        assert self._train_macs is not None
        points, macs = self._coerce_grid_query(points, mac_indices)
        out = np.empty((len(macs), len(points)))
        for start in range(0, len(points), _GRID_CHUNK_ROWS):
            sl = slice(start, min(start + _GRID_CHUNK_ROWS, len(points)))
            base = _powered_distances(points[sl], self._train_positions, self.p)
            global_idx, global_pow = self._global_candidates(base)
            for row, mac_index in enumerate(macs):
                out[row, sl] = self._std_for_mac(
                    base, global_idx, global_pow, int(mac_index)
                )
        return out

    def _std_for_mac(
        self,
        base: np.ndarray,
        global_idx: np.ndarray,
        global_pow: np.ndarray,
        mac_index: int,
    ) -> np.ndarray:
        """Uncertainty for one MAC via the same decomposition as predict."""
        assert self._train_macs is not None and self._train_targets is not None
        n_train = len(self._train_targets)
        penalty = 2.0 * self.onehot_scale**self.p
        if penalty == 0.0 or global_pow.shape[1] >= n_train:
            return self._std_dense(base, mac_index, penalty)
        neighbor_idx, neighbor_pow, covered = self._candidate_neighbors_for_mac(
            base, global_idx, global_pow, mac_index
        )
        out = self._std_from_neighbors(neighbor_idx, neighbor_pow)
        if not covered.all():
            uncovered = ~covered
            out[uncovered] = self._std_dense(base[uncovered], mac_index, penalty)
        return out

    def _std_dense(
        self, base: np.ndarray, mac_index: int, penalty: float
    ) -> np.ndarray:
        """Dense fallback: penalize every column, then top-k std."""
        assert self._train_macs is not None
        if penalty != 0.0:
            powered = base + penalty * (self._train_macs != mac_index)
        else:
            powered = base
        return self._neighbor_std(powered)

    def _neighbor_std(self, powered: np.ndarray) -> np.ndarray:
        """Disagreement + distance proxy over a penalized-distance block."""
        assert self._train_targets is not None
        k = min(self.n_neighbors, len(self._train_targets))
        neighbor_idx, neighbor_pow = _stable_topk(powered, k)
        return self._std_from_neighbors(neighbor_idx, neighbor_pow)

    def _std_from_neighbors(
        self, neighbor_idx: np.ndarray, neighbor_pow: np.ndarray
    ) -> np.ndarray:
        """Disagreement + distance proxy over selected neighbors."""
        assert self._train_targets is not None
        disagreement = self._train_targets[neighbor_idx].std(axis=1)
        if self.p == 2.0:
            neighbor_dist = np.sqrt(neighbor_pow)
        else:
            neighbor_dist = np.power(neighbor_pow, 1.0 / self.p)
        mean_dist = neighbor_dist.mean(axis=1)
        sigma = self._train_target_std
        reach = sigma * mean_dist / (mean_dist + self.UNCERTAINTY_RANGE_M)
        return np.sqrt(disagreement**2 + reach**2)

    def predict_mac_grid(
        self, points: np.ndarray, mac_indices: Sequence[int]
    ) -> np.ndarray:
        """One shared 3-D distance matrix serves every MAC's field.

        The cross-MAC penalty is a constant per MAC, so the expensive
        parts — the powered 3-D distance matrix and its global top-2k
        neighbor candidates — are computed once and reused by every MAC;
        each MAC then only refines candidates against its own (small)
        training partition.
        """
        self._require_fitted()
        assert self._train_macs is not None
        points, macs = self._coerce_grid_query(points, mac_indices)
        out = np.empty((len(macs), len(points)))
        for start in range(0, len(points), _GRID_CHUNK_ROWS):
            sl = slice(start, min(start + _GRID_CHUNK_ROWS, len(points)))
            base = _powered_distances(points[sl], self._train_positions, self.p)
            global_idx, global_pow = self._global_candidates(base)
            for row, mac_index in enumerate(macs):
                out[row, sl] = self._reduce_for_mac(
                    base, global_idx, global_pow, int(mac_index)
                )
        return out

    # ------------------------------------------------------------------
    def _global_candidates(self, base: np.ndarray):
        """Top-2k xyz neighbors regardless of MAC, shared across MACs."""
        width = min(2 * self.n_neighbors, base.shape[1])
        return _stable_topk(base, width)

    def _candidate_neighbors_for_mac(
        self,
        base: np.ndarray,
        global_idx: np.ndarray,
        global_pow: np.ndarray,
        mac_index: int,
    ):
        """Exact penalized top-k ``(idx, pow, covered)`` for one MAC.

        True penalized neighbors are either same-MAC (covered by the
        per-MAC top-k over that MAC's training partition) or other-MAC
        (covered by the global top-2k whenever it holds enough other-MAC
        entries — rows where it does not, flagged ``covered=False``,
        must fall back to the dense search).
        """
        assert self._train_macs is not None and self._train_targets is not None
        n_train = len(self._train_targets)
        k = min(self.n_neighbors, n_train)
        penalty = 2.0 * self.onehot_scale**self.p

        columns = self._mac_columns.get(mac_index)
        n_queries = len(base)
        if columns is None or len(columns) == 0:
            same_idx = np.empty((n_queries, 0), dtype=int)
            same_pow = np.empty((n_queries, 0))
        elif len(columns) <= k:
            same_idx = np.broadcast_to(columns, (n_queries, len(columns)))
            same_pow = base[:, columns]
        else:
            pick, same_pow = _stable_topk(base[:, columns], k)
            same_idx = columns[pick]

        other_mask = self._train_macs[global_idx] != mac_index
        n_other = n_train - (0 if columns is None else len(columns))
        covered = other_mask.sum(axis=1) >= min(k, n_other)
        other_pow = np.where(other_mask, global_pow + penalty, np.inf)

        cand_pow = np.concatenate([same_pow, other_pow], axis=1)
        cand_idx = np.concatenate([same_idx, global_idx], axis=1)
        pick, neighbor_pow = _stable_topk(cand_pow, k)
        neighbor_idx = np.take_along_axis(cand_idx, pick, axis=1)
        return neighbor_idx, neighbor_pow, covered

    def _reduce_for_mac(
        self,
        base: np.ndarray,
        global_idx: np.ndarray,
        global_pow: np.ndarray,
        mac_index: int,
    ) -> np.ndarray:
        """Exact top-k reduction under the penalty decomposition."""
        assert self._train_targets is not None
        n_train = len(self._train_targets)
        penalty = 2.0 * self.onehot_scale**self.p
        if penalty == 0.0 or global_pow.shape[1] >= n_train:
            return self._reduce_dense(base, mac_index, penalty)
        neighbor_idx, neighbor_pow, covered = self._candidate_neighbors_for_mac(
            base, global_idx, global_pow, mac_index
        )
        out = self._weighted_average(
            neighbor_pow, self._train_targets[neighbor_idx]
        )
        if not covered.all():
            uncovered = ~covered
            out[uncovered] = self._reduce_dense(base[uncovered], mac_index, penalty)
        return out

    def _reduce_dense(
        self, base: np.ndarray, mac_index: int, penalty: float
    ) -> np.ndarray:
        """Dense fallback: penalize every column, then top-k."""
        assert self._train_macs is not None
        if penalty != 0.0:
            powered = base + penalty * (self._train_macs != mac_index)
        else:
            powered = base
        return self._reduce_neighbors(powered)

    def _reduce_neighbors(self, powered: np.ndarray) -> np.ndarray:
        """Top-k selection + weighting on a powered-distance matrix."""
        assert self._train_targets is not None
        k = min(self.n_neighbors, len(self._train_targets))
        neighbor_idx, neighbor_pow = _stable_topk(powered, k)
        return self._weighted_average(
            neighbor_pow, self._train_targets[neighbor_idx]
        )

    def _weighted_average(
        self, neighbor_pow: np.ndarray, neighbor_y: np.ndarray
    ) -> np.ndarray:
        """Uniform or inverse-distance weighting over selected neighbors."""
        if self.weights == "uniform":
            return neighbor_y.mean(axis=1)
        if self.p == 2.0:
            neighbor_dist = np.sqrt(neighbor_pow)
        else:
            neighbor_dist = np.power(neighbor_pow, 1.0 / self.p)
        return _inverse_distance_average(neighbor_dist, neighbor_y)

    # ------------------------------------------------------------------
    def _legacy_features(self) -> np.ndarray:
        """[x, y, z, one-hot(MAC)] rebuilt from the fit-time snapshots
        (same layout as ``REMDataset.features``)."""
        assert self._train_positions is not None and self._train_macs is not None
        onehot = np.zeros((len(self._train_macs), self._n_train_macs))
        onehot[np.arange(len(self._train_macs)), self._train_macs] = (
            self.onehot_scale
        )
        return np.hstack([self._train_positions, onehot])

    def _predict_chunk(self, queries: np.ndarray) -> np.ndarray:
        assert self._train_targets is not None
        if self._train_features is None:
            self._train_features = self._legacy_features()
        k = min(self.n_neighbors, len(self._train_targets))
        distances = _minkowski_distances(queries, self._train_features, self.p)
        neighbor_idx, neighbor_dist = _stable_topk(distances, k)
        neighbor_y = self._train_targets[neighbor_idx]
        if self.weights == "uniform":
            return neighbor_y.mean(axis=1)
        return _inverse_distance_average(neighbor_dist, neighbor_y)
