"""Regression metrics used across the evaluation (RMSE front and center).

The paper scores every estimator by the Root Mean Square Error of its
RSS predictions on a held-out test set (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["rmse", "mae", "r2_score", "error_summary"]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty arrays")


def rmse(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Root mean square error."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    _validate(yt, yp)
    return float(np.sqrt(np.mean((yt - yp) ** 2)))


def mae(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Mean absolute error."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    _validate(yt, yp)
    return float(np.mean(np.abs(yt - yp)))


def r2_score(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Coefficient of determination."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    _validate(yt, yp)
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def error_summary(y_true: Sequence[float], y_pred: Sequence[float]) -> Dict[str, float]:
    """RMSE / MAE / R² / p95 absolute error in one dict."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    _validate(yt, yp)
    return {
        "rmse": rmse(yt, yp),
        "mae": mae(yt, yp),
        "r2": r2_score(yt, yp),
        "p95_abs_error": float(np.percentile(np.abs(yt - yp), 95)),
    }
