"""Inverse-distance-weighting (IDW) interpolation per MAC.

The classic Shepard interpolator is the most common baseline in the REM
literature between the trivial mean and kriging: every training sample
of the same AP contributes with weight ``1/d^p``.  Included for the
ablation suite — it brackets the k-NN family from the "use everything"
side (k-NN with k=∞ and distance weights is IDW with p=1).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..dataset import REMDataset
from .base import Predictor, nearest_distances

__all__ = ["IdwRegressor"]


class IdwRegressor(Predictor):
    """Shepard interpolation over coordinates, one model per MAC.

    Parameters
    ----------
    power:
        Distance exponent ``p``; larger values localize the estimate.
    epsilon_m:
        Distance floor preventing infinite weights at training points
        (an exact match below this distance returns that sample's mean).
    """

    PARAM_NAMES = ("power", "epsilon_m")
    name = "idw"
    supports_partial_fit = True

    def __init__(self, power: float = 2.0, epsilon_m: float = 1e-6):
        super().__init__()
        if power <= 0:
            raise ValueError(f"power must be positive, got {power}")
        if epsilon_m <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon_m}")
        self.power = float(power)
        self.epsilon_m = float(epsilon_m)
        self._per_mac: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._global_mean = 0.0

    # ------------------------------------------------------------------
    def fit(self, train: REMDataset) -> "IdwRegressor":
        """Partition training rows by MAC."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._global_mean = float(train.rssi_dbm.mean())
        self._per_mac = {}
        for mac_index in np.unique(train.mac_indices):
            mask = train.mac_indices == mac_index
            self._per_mac[int(mac_index)] = (
                train.positions[mask],
                train.rssi_dbm[mask].astype(float),
            )
        self._mark_fitted(train)
        return self

    def partial_fit(self, delta: REMDataset) -> "IdwRegressor":
        """Append delta rows to the per-MAC sample clouds.

        Only the MACs present in the delta are touched; the appended
        arrays equal a full fit's masked arrays bit for bit because
        appending preserves row order.  The global-mean fallback is
        recomputed over the full target array.
        """
        if not self._check_partial_fit(delta):
            return self
        self._extend_fitted(delta)
        assert self._train_rssi is not None
        self._global_mean = float(self._train_rssi.mean())
        # One stable sort groups delta rows by MAC (ascending row index
        # within each group, identical to a boolean-mask scan) instead
        # of one O(delta) mask per touched MAC.
        order = np.argsort(delta.mac_indices, kind="stable")
        groups, starts = np.unique(delta.mac_indices[order], return_index=True)
        bounds = np.append(starts, len(order))
        for g, mac_index in enumerate(groups):
            rows = order[starts[g] : bounds[g + 1]]
            key = int(mac_index)
            new_positions = delta.positions[rows]
            new_values = delta.rssi_dbm[rows].astype(float)
            if key in self._per_mac:
                positions, values = self._per_mac[key]
                self._per_mac[key] = (
                    np.concatenate([positions, new_positions]),
                    np.concatenate([values, new_values]),
                )
            else:
                self._per_mac[key] = (new_positions, new_values)
        return self

    def predict(self, data: REMDataset) -> np.ndarray:
        """Shepard-weighted average of same-MAC samples per query."""
        self._require_fitted()
        return self.predict_points(data.positions, data.mac_indices)

    def predict_points(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Batched prediction: one vectorized Shepard kernel per MAC."""
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        out = np.full(len(points), self._global_mean)
        for mac_index in np.unique(mac_indices):
            key = int(mac_index)
            if key not in self._per_mac:
                continue
            positions, values = self._per_mac[key]
            mask = mac_indices == mac_index
            out[mask] = self._shepard(positions, values, points[mask])
        return out

    def predict_points_std(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Distance proxy scaled by each MAC's own target spread.

        Shepard weights give no disagreement signal (every sample always
        contributes), so uncertainty is purely how far the query sits
        from that MAC's sample cloud, saturating at the per-MAC spread.
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        out = np.full(len(points), self._train_target_std)
        for mac_index in np.unique(mac_indices):
            key = int(mac_index)
            if key not in self._per_mac:
                continue
            positions, values = self._per_mac[key]
            mask = mac_indices == mac_index
            nearest = nearest_distances(points[mask], positions)
            if len(values) > 1:
                sigma = max(float(values.std()), 1e-6)
            else:
                sigma = self._train_target_std
            out[mask] = sigma * nearest / (nearest + self.UNCERTAINTY_RANGE_M)
        return out

    # ------------------------------------------------------------------
    def _shepard(
        self, positions: np.ndarray, values: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        distances = np.linalg.norm(
            queries[:, None, :] - positions[None, :, :], axis=2
        )
        estimates = np.empty(len(queries))
        exact = distances.min(axis=1) < self.epsilon_m
        if exact.any():
            matches = distances[exact] < self.epsilon_m
            estimates[exact] = np.where(matches, values[None, :], 0.0).sum(
                axis=1
            ) / matches.sum(axis=1)
        inexact = ~exact
        if inexact.any():
            weights = 1.0 / np.power(distances[inexact], self.power)
            estimates[inexact] = (weights @ values) / weights.sum(axis=1)
        return estimates
