"""The paper's neural network estimator, implemented on bare numpy.

§III-B's optimized configuration: an input layer taking the x, y, z
coordinates and the one-hot encoded MAC address, one fully connected
hidden layer of 16 nodes with sigmoid activation, a single linear
output node, trained with the Adam optimizer on mean-squared error.

No deep-learning framework is available offline, so forward/backward
passes and Adam are hand-rolled; inputs are standardized and targets
normalized internally (one of the configurations the paper reports
trying), with predictions mapped back to dBm.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..dataset import REMDataset
from .base import Predictor

__all__ = ["MlpRegressor"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class MlpRegressor(Predictor):
    """coordinates+one-hot → sigmoid(16) → linear(1), trained with Adam."""

    PARAM_NAMES = (
        "hidden_units",
        "learning_rate",
        "epochs",
        "batch_size",
        "seed",
        "onehot_scale",
    )
    name = "neural-network"

    def __init__(
        self,
        hidden_units: int = 16,
        learning_rate: float = 3e-3,
        epochs: int = 300,
        batch_size: int = 32,
        seed: int = 0,
        onehot_scale: float = 1.0,
    ):
        super().__init__()
        if hidden_units < 1:
            raise ValueError(f"hidden_units must be >= 1, got {hidden_units}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.hidden_units = int(hidden_units)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.onehot_scale = float(onehot_scale)
        self._weights: Dict[str, np.ndarray] = {}
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self.training_loss: list = []

    # ------------------------------------------------------------------
    def fit(self, train: REMDataset) -> "MlpRegressor":
        """Train with Adam on standardized features/targets."""
        if len(train) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.seed)
        X = train.features(self.onehot_scale)
        y = train.rssi_dbm.astype(float)

        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std < 1e-9] = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        Xn = (X - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std

        n_features = Xn.shape[1]
        h = self.hidden_units
        limit1 = np.sqrt(6.0 / (n_features + h))
        limit2 = np.sqrt(6.0 / (h + 1))
        params = {
            "W1": rng.uniform(-limit1, limit1, size=(n_features, h)),
            "b1": np.zeros(h),
            "W2": rng.uniform(-limit2, limit2, size=(h, 1)),
            "b2": np.zeros(1),
        }
        adam_m = {k: np.zeros_like(v) for k, v in params.items()}
        adam_v = {k: np.zeros_like(v) for k, v in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.training_loss = []

        n = len(yn)
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = Xn[idx], yn[idx]
                # Forward.
                z1 = xb @ params["W1"] + params["b1"]
                a1 = _sigmoid(z1)
                pred = (a1 @ params["W2"] + params["b2"]).ravel()
                err = pred - yb
                epoch_loss += float(np.sum(err**2))
                # Backward (MSE).
                m = len(idx)
                d_pred = (2.0 / m) * err[:, None]
                grads = {
                    "W2": a1.T @ d_pred,
                    "b2": d_pred.sum(axis=0),
                }
                d_a1 = d_pred @ params["W2"].T
                d_z1 = d_a1 * a1 * (1.0 - a1)
                grads["W1"] = xb.T @ d_z1
                grads["b1"] = d_z1.sum(axis=0)
                # Adam.
                step += 1
                for key in params:
                    g = grads[key]
                    adam_m[key] = beta1 * adam_m[key] + (1 - beta1) * g
                    adam_v[key] = beta2 * adam_v[key] + (1 - beta2) * (g * g)
                    m_hat = adam_m[key] / (1 - beta1**step)
                    v_hat = adam_v[key] / (1 - beta2**step)
                    params[key] = params[key] - self.learning_rate * m_hat / (
                        np.sqrt(v_hat) + eps
                    )
            self.training_loss.append(epoch_loss / n)
        self._weights = params
        self._mark_fitted(train)
        return self

    # ------------------------------------------------------------------
    def predict(self, data: REMDataset) -> np.ndarray:
        """Forward pass, de-normalized back to dBm."""
        self._require_fitted()
        X = data.features(self.onehot_scale)
        Xn = (X - self._x_mean) / self._x_std
        a1 = _sigmoid(Xn @ self._weights["W1"] + self._weights["b1"])
        pred = (a1 @ self._weights["W2"] + self._weights["b2"]).ravel()
        return pred * self._y_std + self._y_mean
