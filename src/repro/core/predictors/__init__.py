"""RSS predictors: the paper's estimator families plus extensions.

* :class:`MeanPerMacBaseline` — the paper's baseline (mean per MAC);
* :class:`KnnRegressor` — k-NN over [x, y, z, one-hot(MAC)] features,
  covering both the base and the scaled-one-hot variants;
* :class:`PerMacKnnRegressor` — one spatial k-NN per MAC;
* :class:`MlpRegressor` — the paper's 16-unit sigmoid MLP (Adam);
* :class:`OrdinaryKrigingRegressor` — geostatistical extension;
* grid-search CV machinery and regression metrics.
"""

from .base import NotFittedError, Predictor
from .baseline import MeanPerMacBaseline
from .gridsearch import (
    CvResult,
    GridSearchResult,
    ParamGrid,
    cross_validate,
    grid_search,
)
from .idw import IdwRegressor
from .kriging import ExponentialVariogram, OrdinaryKrigingRegressor, fit_variogram
from .knn import KnnRegressor
from .metrics import error_summary, mae, r2_score, rmse
from .neural import MlpRegressor
from .per_mac_knn import PerMacKnnRegressor

__all__ = [
    "Predictor",
    "NotFittedError",
    "MeanPerMacBaseline",
    "KnnRegressor",
    "PerMacKnnRegressor",
    "MlpRegressor",
    "IdwRegressor",
    "OrdinaryKrigingRegressor",
    "ExponentialVariogram",
    "fit_variogram",
    "ParamGrid",
    "CvResult",
    "GridSearchResult",
    "cross_validate",
    "grid_search",
    "rmse",
    "mae",
    "r2_score",
    "error_summary",
]
