"""The predictor contract all RSS estimators implement.

Predictors consume :class:`repro.core.REMDataset` views directly (not
raw matrices) because several of the paper's estimators need the MAC
identity of each sample, not just its feature encoding — the
mean-per-MAC baseline and the per-MAC k-NN ensemble most obviously.

Beyond the row-wise :meth:`Predictor.predict`, the contract exposes two
batched entry points that the REM engine drives:

* :meth:`Predictor.predict_points` — predict at raw ``(N, 3)`` points
  with one MAC index per row, without building a dataset view;
* :meth:`Predictor.predict_mac_grid` — the REM cross product: one point
  set evaluated for *every* requested MAC, returned as ``(M, N)``.

The base class provides shims that route both through the legacy
:meth:`predict` path, so third-party predictors keep working unchanged;
the in-tree estimators override them with vectorized fast paths.

The contract also carries a batched **uncertainty** channel, which the
active-sampling planner drives:

* :meth:`Predictor.predict_points_std` — a per-query standard-deviation
  estimate (dB) mirroring :meth:`predict_points`;
* :meth:`Predictor.uncertainty_grid` — the ``(M, N)`` cross product
  mirroring :meth:`predict_mac_grid`.

Kriging answers with its native variance; the k-NN family answers with
neighbor-disagreement proxies; everything else inherits the base-class
fallback — a distance-to-nearest-same-MAC-sample proxy over the train
support recorded at fit time — so *any* fitted predictor can steer an
active campaign.

Finally, the contract carries an **incremental-fit** channel that the
online builder drives: estimators that set
:attr:`Predictor.supports_partial_fit` accept
:meth:`Predictor.partial_fit` deltas — new rows over the *same* MAC
vocabulary — and are required to end up numerically identical (1e-9)
to a from-scratch :meth:`Predictor.fit` on the concatenated data.  The
in-tree implementations achieve this by appending the delta rows to
their per-MAC/structure-of-arrays buffers (row order is preserved, so
the appended arrays equal the full-fit masked arrays bit for bit) and
recomputing derived statistics only for the MACs the delta touched.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..dataset import REMDataset

__all__ = ["Predictor", "NotFittedError"]

#: Query rows per block in the distance-proxy paths: bounds the
#: transient ``(rows, train, 3)`` delta tensor on lattice-sized queries.
_STD_CHUNK_ROWS = 2048


def nearest_distances(
    queries: np.ndarray, support: np.ndarray
) -> np.ndarray:
    """Distance from each query to its nearest support point, chunked."""
    out = np.empty(len(queries))
    for start in range(0, len(queries), _STD_CHUNK_ROWS):
        sl = slice(start, min(start + _STD_CHUNK_ROWS, len(queries)))
        deltas = queries[sl, None, :] - support[None, :, :]
        out[sl] = np.sqrt(np.sum(deltas * deltas, axis=2)).min(axis=1)
    return out


class NotFittedError(RuntimeError):
    """Raised when predict() is called before fit()."""


class Predictor(abc.ABC):
    """Abstract RSS regressor over :class:`REMDataset` views.

    Subclasses declare their constructor parameters in ``PARAM_NAMES``;
    that single source of truth powers ``get_params`` / ``clone`` and
    the grid-search machinery.
    """

    #: Constructor parameter names (subclasses override).
    PARAM_NAMES: Tuple[str, ...] = ()

    #: Human-readable estimator name for reports.
    name: str = "predictor"

    #: Whether :meth:`partial_fit` is implemented.  Incremental-capable
    #: estimators set this ``True``; consumers (the online builder most
    #: notably) feature-test it before routing delta refits.
    supports_partial_fit: bool = False

    #: Length scale (m) of the base-class distance-uncertainty proxy:
    #: the proxy saturates toward the training target spread once a
    #: query is a few of these away from any same-MAC sample.
    UNCERTAINTY_RANGE_M: float = 1.0

    def __init__(self):
        self._fitted = False
        self._train_vocabulary: Optional[Tuple[str, ...]] = None
        self._train_support: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._train_rssi: Optional[np.ndarray] = None
        self._train_target_std: float = 1.0

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, train: REMDataset) -> "Predictor":
        """Fit on the training view; returns self for chaining."""

    @abc.abstractmethod
    def predict(self, data: REMDataset) -> np.ndarray:
        """Predict RSS (dBm) for every row of ``data``."""

    def partial_fit(self, delta: REMDataset) -> "Predictor":
        """Incorporate new rows without refitting from scratch.

        ``delta`` must carry the *same* MAC vocabulary the estimator was
        fitted on; vocabulary growth requires a full :meth:`fit` (the
        online builder falls back automatically).  Implementations are
        pinned to from-scratch equivalence: after ``fit(a)`` followed by
        ``partial_fit(b)``, every prediction/uncertainty path must match
        ``fit(a + b)`` to 1e-9.  The base class has no incremental
        state, so it refuses; estimators that can honor the contract set
        :attr:`supports_partial_fit` and override this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support partial_fit "
            "(supports_partial_fit is False); refit from scratch instead"
        )

    # ------------------------------------------------------------------
    # batched query API (the REM engine's entry points)
    # ------------------------------------------------------------------
    def predict_points(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Predict RSS at raw ``(N, 3)`` points, one MAC index per row.

        The default shim wraps the inputs in a :class:`REMDataset` over
        the fitted vocabulary and defers to :meth:`predict`, preserving
        the legacy per-dataset path bit for bit.  Subclasses override it
        with native vectorized implementations.
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        return self.predict(self._as_dataset(points, mac_indices))

    def predict_mac_grid(
        self, points: np.ndarray, mac_indices: Sequence[int]
    ) -> np.ndarray:
        """Evaluate one point set for every MAC in ``mac_indices``.

        Returns an ``(M, N)`` array: row ``m`` is the field of
        ``mac_indices[m]`` over all ``N`` points.  The default stacks
        per-MAC :meth:`predict_points` calls; estimators that can share
        work across MACs (the one-hot k-NN most notably) override it.
        """
        self._require_fitted()
        points, macs = self._coerce_grid_query(points, mac_indices)
        n = len(points)
        out = np.empty((len(macs), n))
        for row, mac_index in enumerate(macs):
            out[row] = self.predict_points(
                points, np.full(n, int(mac_index), dtype=int)
            )
        return out

    # ------------------------------------------------------------------
    # batched uncertainty API (the active-sampling planner's entry points)
    # ------------------------------------------------------------------
    def predict_points_std(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Standard-deviation estimate (dB) per ``(point, MAC)`` query.

        The base-class fallback is a *distance proxy* over the train
        support recorded by :meth:`_mark_fitted`: uncertainty rises with
        the distance to the nearest same-MAC training sample and
        saturates at the training target spread,

            std(q) = sigma_train * d / (d + UNCERTAINTY_RANGE_M),

        with MACs never observed in training pinned at ``sigma_train``.
        Estimators with a principled notion of uncertainty (kriging
        variance, k-NN neighbor disagreement) override this.
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        if self._train_support is None:
            return np.full(len(points), self._train_target_std)
        return self._distance_std_proxy(points, mac_indices)

    def uncertainty_grid(
        self, points: np.ndarray, mac_indices: Sequence[int]
    ) -> np.ndarray:
        """Uncertainty of one point set for every MAC in ``mac_indices``.

        Returns an ``(M, N)`` array mirroring :meth:`predict_mac_grid`;
        the default stacks per-MAC :meth:`predict_points_std` calls.
        """
        self._require_fitted()
        points, macs = self._coerce_grid_query(points, mac_indices)
        n = len(points)
        out = np.empty((len(macs), n))
        for row, mac_index in enumerate(macs):
            out[row] = self.predict_points_std(
                points, np.full(n, int(mac_index), dtype=int)
            )
        return out

    def _distance_std_proxy(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """The saturating nearest-same-MAC-distance proxy."""
        assert self._train_support is not None
        train_points, train_macs = self._train_support
        sigma = self._train_target_std
        out = np.full(len(points), sigma)
        for mac_index in np.unique(mac_indices):
            columns = np.flatnonzero(train_macs == mac_index)
            if len(columns) == 0:
                continue
            rows = mac_indices == mac_index
            nearest = nearest_distances(points[rows], train_points[columns])
            out[rows] = sigma * nearest / (nearest + self.UNCERTAINTY_RANGE_M)
        return out

    def bind_vocabulary(self, mac_vocabulary: Sequence[str]) -> None:
        """Record the MAC vocabulary the batched shims should assume.

        A no-op when :meth:`fit` already recorded one (every in-tree
        estimator does); consumers like ``build_rem`` call this so that
        legacy subclasses whose ``fit`` predates the batched API still
        get correctly-shaped dataset views from the shims.
        """
        if self._train_vocabulary is None:
            self._train_vocabulary = tuple(mac_vocabulary)

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_grid_query(
        points: np.ndarray, mac_indices: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Normalize a (point set, MAC list) grid-query pair."""
        points = np.ascontiguousarray(
            np.asarray(points, dtype=float).reshape(-1, 3)
        )
        return points, np.asarray(mac_indices, dtype=int).reshape(-1)

    def _coerce_point_query(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Validate/normalize a (points, mac_indices) query pair."""
        points = np.asarray(points, dtype=float).reshape(-1, 3)
        mac_indices = np.asarray(mac_indices, dtype=int)
        if mac_indices.ndim == 0:
            mac_indices = np.full(len(points), int(mac_indices), dtype=int)
        if mac_indices.shape != (len(points),):
            raise ValueError(
                f"mac_indices shape {mac_indices.shape} does not match "
                f"{len(points)} query points"
            )
        return points, mac_indices

    def _as_dataset(self, points: np.ndarray, mac_indices: np.ndarray) -> REMDataset:
        """A throwaway dataset view over raw query points."""
        vocabulary = self._train_vocabulary
        if vocabulary is None or (
            len(mac_indices) and int(mac_indices.max()) >= len(vocabulary)
        ):
            # Unknown training vocabulary (or indices beyond it): make a
            # synthetic one wide enough — per-MAC estimators only key on
            # the integer index anyway.
            width = int(mac_indices.max()) + 1 if len(mac_indices) else 1
            vocabulary = tuple(f"mac-{i:02d}" for i in range(width))
        n = len(points)
        return REMDataset(
            positions=points,
            mac_indices=mac_indices,
            channels=np.ones(n, dtype=int),
            rssi_dbm=np.zeros(n),
            mac_vocabulary=vocabulary,
        )

    # ------------------------------------------------------------------
    def get_params(self) -> Dict[str, Any]:
        """Constructor parameters as a dict."""
        return {name: getattr(self, name) for name in self.PARAM_NAMES}

    def set_params(self, **params: Any) -> "Predictor":
        """Update parameters in place (refit required afterwards)."""
        for key, value in params.items():
            if key not in self.PARAM_NAMES:
                raise ValueError(f"{type(self).__name__} has no parameter {key!r}")
            setattr(self, key, value)
        self._fitted = False
        return self

    def clone(self, **overrides: Any) -> "Predictor":
        """A fresh unfitted copy, optionally with parameter overrides."""
        params = self.get_params()
        params.update(overrides)
        return type(self)(**params)

    # ------------------------------------------------------------------
    def _mark_fitted(self, train: Optional[REMDataset] = None) -> None:
        self._fitted = True
        if train is not None:
            self._train_vocabulary = train.mac_vocabulary
            # Train support for the fallback uncertainty proxy; copies so
            # later mutation of the dataset cannot skew the proxy.
            self._train_support = (
                train.positions.astype(float).copy(),
                train.mac_indices.astype(int).copy(),
            )
            # Raw targets kept so _extend_fitted can recompute the spread
            # over the exact concatenated array (bit-equal to a full fit).
            self._train_rssi = train.rssi_dbm.astype(float).copy()
            spread = float(train.rssi_dbm.std()) if len(train) else 1.0
            self._train_target_std = max(spread, 1e-6)

    def _check_partial_fit(self, delta: REMDataset) -> bool:
        """Validate a :meth:`partial_fit` delta; ``True`` if it has rows.

        Raises when the estimator is unfitted or the delta's vocabulary
        differs from the fitted one (callers must route those through a
        full :meth:`fit`); an empty delta is a no-op (returns ``False``).
        """
        self._require_fitted()
        if (
            self._train_vocabulary is not None
            and tuple(delta.mac_vocabulary) != tuple(self._train_vocabulary)
        ):
            raise ValueError(
                "partial_fit delta vocabulary differs from the fitted "
                "vocabulary; refit from scratch on the combined dataset"
            )
        return len(delta) > 0

    def _extend_fitted(self, delta: REMDataset) -> None:
        """Append delta rows to the base-class bookkeeping arrays.

        Keeps the fallback uncertainty proxy and the recorded target
        spread identical to what a from-scratch fit on the concatenated
        dataset would produce.
        """
        if self._train_support is None or self._train_rssi is None:
            return
        points, macs = self._train_support
        self._train_support = (
            np.concatenate([points, delta.positions.astype(float)]),
            np.concatenate([macs, delta.mac_indices.astype(int)]),
        )
        self._train_rssi = np.concatenate(
            [self._train_rssi, delta.rssi_dbm.astype(float)]
        )
        self._train_target_std = max(float(self._train_rssi.std()), 1e-6)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"
