"""The predictor contract all RSS estimators implement.

Predictors consume :class:`repro.core.REMDataset` views directly (not
raw matrices) because several of the paper's estimators need the MAC
identity of each sample, not just its feature encoding — the
mean-per-MAC baseline and the per-MAC k-NN ensemble most obviously.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Tuple

import numpy as np

from ..dataset import REMDataset

__all__ = ["Predictor", "NotFittedError"]


class NotFittedError(RuntimeError):
    """Raised when predict() is called before fit()."""


class Predictor(abc.ABC):
    """Abstract RSS regressor over :class:`REMDataset` views.

    Subclasses declare their constructor parameters in ``PARAM_NAMES``;
    that single source of truth powers ``get_params`` / ``clone`` and
    the grid-search machinery.
    """

    #: Constructor parameter names (subclasses override).
    PARAM_NAMES: Tuple[str, ...] = ()

    #: Human-readable estimator name for reports.
    name: str = "predictor"

    def __init__(self):
        self._fitted = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, train: REMDataset) -> "Predictor":
        """Fit on the training view; returns self for chaining."""

    @abc.abstractmethod
    def predict(self, data: REMDataset) -> np.ndarray:
        """Predict RSS (dBm) for every row of ``data``."""

    # ------------------------------------------------------------------
    def get_params(self) -> Dict[str, Any]:
        """Constructor parameters as a dict."""
        return {name: getattr(self, name) for name in self.PARAM_NAMES}

    def set_params(self, **params: Any) -> "Predictor":
        """Update parameters in place (refit required afterwards)."""
        for key, value in params.items():
            if key not in self.PARAM_NAMES:
                raise ValueError(f"{type(self).__name__} has no parameter {key!r}")
            setattr(self, key, value)
        self._fitted = False
        return self

    def clone(self, **overrides: Any) -> "Predictor":
        """A fresh unfitted copy, optionally with parameter overrides."""
        params = self.get_params()
        params.update(overrides)
        return type(self)(**params)

    # ------------------------------------------------------------------
    def _mark_fitted(self) -> None:
        self._fitted = True

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"
