"""The predictor contract all RSS estimators implement.

Predictors consume :class:`repro.core.REMDataset` views directly (not
raw matrices) because several of the paper's estimators need the MAC
identity of each sample, not just its feature encoding — the
mean-per-MAC baseline and the per-MAC k-NN ensemble most obviously.

Beyond the row-wise :meth:`Predictor.predict`, the contract exposes two
batched entry points that the REM engine drives:

* :meth:`Predictor.predict_points` — predict at raw ``(N, 3)`` points
  with one MAC index per row, without building a dataset view;
* :meth:`Predictor.predict_mac_grid` — the REM cross product: one point
  set evaluated for *every* requested MAC, returned as ``(M, N)``.

The base class provides shims that route both through the legacy
:meth:`predict` path, so third-party predictors keep working unchanged;
the in-tree estimators override them with vectorized fast paths.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..dataset import REMDataset

__all__ = ["Predictor", "NotFittedError"]


class NotFittedError(RuntimeError):
    """Raised when predict() is called before fit()."""


class Predictor(abc.ABC):
    """Abstract RSS regressor over :class:`REMDataset` views.

    Subclasses declare their constructor parameters in ``PARAM_NAMES``;
    that single source of truth powers ``get_params`` / ``clone`` and
    the grid-search machinery.
    """

    #: Constructor parameter names (subclasses override).
    PARAM_NAMES: Tuple[str, ...] = ()

    #: Human-readable estimator name for reports.
    name: str = "predictor"

    def __init__(self):
        self._fitted = False
        self._train_vocabulary: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, train: REMDataset) -> "Predictor":
        """Fit on the training view; returns self for chaining."""

    @abc.abstractmethod
    def predict(self, data: REMDataset) -> np.ndarray:
        """Predict RSS (dBm) for every row of ``data``."""

    # ------------------------------------------------------------------
    # batched query API (the REM engine's entry points)
    # ------------------------------------------------------------------
    def predict_points(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> np.ndarray:
        """Predict RSS at raw ``(N, 3)`` points, one MAC index per row.

        The default shim wraps the inputs in a :class:`REMDataset` over
        the fitted vocabulary and defers to :meth:`predict`, preserving
        the legacy per-dataset path bit for bit.  Subclasses override it
        with native vectorized implementations.
        """
        self._require_fitted()
        points, mac_indices = self._coerce_point_query(points, mac_indices)
        return self.predict(self._as_dataset(points, mac_indices))

    def predict_mac_grid(
        self, points: np.ndarray, mac_indices: Sequence[int]
    ) -> np.ndarray:
        """Evaluate one point set for every MAC in ``mac_indices``.

        Returns an ``(M, N)`` array: row ``m`` is the field of
        ``mac_indices[m]`` over all ``N`` points.  The default stacks
        per-MAC :meth:`predict_points` calls; estimators that can share
        work across MACs (the one-hot k-NN most notably) override it.
        """
        self._require_fitted()
        points, macs = self._coerce_grid_query(points, mac_indices)
        n = len(points)
        out = np.empty((len(macs), n))
        for row, mac_index in enumerate(macs):
            out[row] = self.predict_points(
                points, np.full(n, int(mac_index), dtype=int)
            )
        return out

    def bind_vocabulary(self, mac_vocabulary: Sequence[str]) -> None:
        """Record the MAC vocabulary the batched shims should assume.

        A no-op when :meth:`fit` already recorded one (every in-tree
        estimator does); consumers like ``build_rem`` call this so that
        legacy subclasses whose ``fit`` predates the batched API still
        get correctly-shaped dataset views from the shims.
        """
        if self._train_vocabulary is None:
            self._train_vocabulary = tuple(mac_vocabulary)

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_grid_query(
        points: np.ndarray, mac_indices: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Normalize a (point set, MAC list) grid-query pair."""
        points = np.ascontiguousarray(
            np.asarray(points, dtype=float).reshape(-1, 3)
        )
        return points, np.asarray(mac_indices, dtype=int).reshape(-1)

    def _coerce_point_query(
        self, points: np.ndarray, mac_indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Validate/normalize a (points, mac_indices) query pair."""
        points = np.asarray(points, dtype=float).reshape(-1, 3)
        mac_indices = np.asarray(mac_indices, dtype=int)
        if mac_indices.ndim == 0:
            mac_indices = np.full(len(points), int(mac_indices), dtype=int)
        if mac_indices.shape != (len(points),):
            raise ValueError(
                f"mac_indices shape {mac_indices.shape} does not match "
                f"{len(points)} query points"
            )
        return points, mac_indices

    def _as_dataset(self, points: np.ndarray, mac_indices: np.ndarray) -> REMDataset:
        """A throwaway dataset view over raw query points."""
        vocabulary = self._train_vocabulary
        if vocabulary is None or (
            len(mac_indices) and int(mac_indices.max()) >= len(vocabulary)
        ):
            # Unknown training vocabulary (or indices beyond it): make a
            # synthetic one wide enough — per-MAC estimators only key on
            # the integer index anyway.
            width = int(mac_indices.max()) + 1 if len(mac_indices) else 1
            vocabulary = tuple(f"mac-{i:02d}" for i in range(width))
        n = len(points)
        return REMDataset(
            positions=points,
            mac_indices=mac_indices,
            channels=np.ones(n, dtype=int),
            rssi_dbm=np.zeros(n),
            mac_vocabulary=vocabulary,
        )

    # ------------------------------------------------------------------
    def get_params(self) -> Dict[str, Any]:
        """Constructor parameters as a dict."""
        return {name: getattr(self, name) for name in self.PARAM_NAMES}

    def set_params(self, **params: Any) -> "Predictor":
        """Update parameters in place (refit required afterwards)."""
        for key, value in params.items():
            if key not in self.PARAM_NAMES:
                raise ValueError(f"{type(self).__name__} has no parameter {key!r}")
            setattr(self, key, value)
        self._fitted = False
        return self

    def clone(self, **overrides: Any) -> "Predictor":
        """A fresh unfitted copy, optionally with parameter overrides."""
        params = self.get_params()
        params.update(overrides)
        return type(self)(**params)

    # ------------------------------------------------------------------
    def _mark_fitted(self, train: Optional[REMDataset] = None) -> None:
        self._fitted = True
        if train is not None:
            self._train_vocabulary = train.mac_vocabulary

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"
