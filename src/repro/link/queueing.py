"""Bounded packet queues with drop accounting.

The Crazyflie firmware buffers downlink packets in a fixed-size FreeRTOS
queue (``CRTP_TX_QUEUE_SIZE``).  The stock size cannot hold a full scan
result while the radio is off, which is exactly why the paper's firmware
modification enlarges it (§II-C).  The queue here reproduces that
behaviour: fixed capacity, reject-new on overflow (FreeRTOS
``xQueueSend`` semantics with zero timeout), and drop counters that the
tests and the ablation bench assert on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, List, Optional, TypeVar

T = TypeVar("T")

__all__ = ["BoundedQueue", "QueueStats"]


@dataclass
class QueueStats:
    """Counters describing a queue's lifetime behaviour."""

    enqueued: int = 0
    dropped: int = 0
    dequeued: int = 0
    high_watermark: int = 0


class BoundedQueue(Generic[T]):
    """FIFO with a hard capacity; offers are rejected when full.

    Mirrors FreeRTOS queue semantics used by the CRTP TX path: the
    producer does not block, it simply loses the packet.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._items: Deque[T] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """True when no more items can be offered."""
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when nothing is queued."""
        return not self._items

    def offer(self, item: T) -> bool:
        """Try to enqueue; returns False (and counts a drop) when full."""
        if self.full:
            self.stats.dropped += 1
            return False
        self._items.append(item)
        self.stats.enqueued += 1
        self.stats.high_watermark = max(self.stats.high_watermark, len(self._items))
        return True

    def poll(self) -> Optional[T]:
        """Dequeue the oldest item, or None when empty."""
        if not self._items:
            return None
        self.stats.dequeued += 1
        return self._items.popleft()

    def drain(self, limit: Optional[int] = None) -> List[T]:
        """Dequeue up to ``limit`` items (all of them by default)."""
        out: List[T] = []
        while self._items and (limit is None or len(out) < limit):
            item = self.poll()
            assert item is not None
            out.append(item)
        return out

    def clear(self) -> int:
        """Discard everything; returns the number of discarded items."""
        n = len(self._items)
        self._items.clear()
        return n
