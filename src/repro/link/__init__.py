"""Control-link substrate: CRTP packets, bounded queues, Crazyradio.

Models the paper's control plane: the Crazyradio dongle (2400-2525 MHz,
126 channels), CRTP packet framing, the firmware's bounded TX queue that
buffers scan results while the radio is off, and the coupling of link
activity into the RF environment as self-interference (Fig. 5).
"""

from .crazyradio import Crazyradio, CrazyradioLink, RadioConfig
from .crtp import MAX_PAYLOAD_BYTES, CrtpPacket, CrtpPort
from .queueing import BoundedQueue, QueueStats

__all__ = [
    "Crazyradio",
    "CrazyradioLink",
    "RadioConfig",
    "CrtpPacket",
    "CrtpPort",
    "MAX_PAYLOAD_BYTES",
    "BoundedQueue",
    "QueueStats",
]
