"""Crazy RealTime Protocol (CRTP) packet model.

The Crazyradio dongle and the Crazyflie exchange CRTP packets: a 1-byte
header addressing a port (subsystem) and channel, plus up to 30 bytes of
payload.  This module models the packet structure and the application
port allocation used by the REM toolchain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["CrtpPort", "CrtpPacket", "MAX_PAYLOAD_BYTES"]

#: CRTP payload limit (radio frame of 32 bytes minus the header).
MAX_PAYLOAD_BYTES: int = 30


class CrtpPort(enum.IntEnum):
    """CRTP port allocation (subset relevant to the toolchain)."""

    CONSOLE = 0x00
    PARAM = 0x02
    COMMANDER = 0x03
    MEM = 0x04
    LOG = 0x05
    LOCALIZATION = 0x06
    GENERIC_SETPOINT = 0x07
    #: Application port used by the REM scan app (results, commands).
    APP = 0x0D
    LINK = 0x0F


@dataclass(frozen=True)
class CrtpPacket:
    """One CRTP packet.

    Attributes
    ----------
    port:
        Destination subsystem.
    channel:
        Sub-address within the port (0-3 on the wire).
    payload:
        Up to 30 bytes of data.
    """

    port: CrtpPort
    channel: int = 0
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.channel <= 3:
            raise ValueError(f"CRTP channel must be 0-3, got {self.channel}")
        if len(self.payload) > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"CRTP payload limited to {MAX_PAYLOAD_BYTES} bytes, "
                f"got {len(self.payload)}"
            )

    @property
    def header_byte(self) -> int:
        """The on-air header byte: port in the high nibble, channel low."""
        return ((int(self.port) & 0x0F) << 4) | (self.channel & 0x03)

    @property
    def size_bytes(self) -> int:
        """On-air size including the header."""
        return 1 + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrtpPacket({self.port.name}:{self.channel}, {len(self.payload)}B)"
        )
