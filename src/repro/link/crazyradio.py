"""The Crazyradio dongle and the radio link between station and UAV.

The Crazyradio is a USB nRF24LU1 dongle with 126 channels uniformly
spread over 2400-2525 MHz (§II-C).  Two aspects matter to the
toolchain and are modelled here:

* **Connectivity** — CRTP packets flow only while the radio is on; the
  UAV's downlink packets otherwise accumulate in its bounded TX queue.
* **Self-interference** — while the link is active, the polling traffic
  raises the scan receiver's noise floor (Fig. 5).  Turning the radio
  on/off (de)registers the interference source with the environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..radio.environment import IndoorEnvironment
from ..radio.interference import crazyradio_source
from ..radio.spectrum import (
    CRAZYRADIO_MAX_MHZ,
    CRAZYRADIO_MIN_MHZ,
    nrf24_channel_center_mhz,
    nrf24_channel_for_mhz,
)
from ..sim.kernel import Simulator
from .crtp import CrtpPacket
from .queueing import BoundedQueue

__all__ = ["RadioConfig", "Crazyradio", "CrazyradioLink"]


@dataclass(frozen=True)
class RadioConfig:
    """Crazyradio + victim-coupling parameters.

    ``power_at_victim_dbm`` and ``duty_cycle`` describe the combined
    control-link interferer as seen by the UAV's scan receiver (see
    :mod:`repro.radio.interference`).
    """

    freq_mhz: float = 2475.0
    power_at_victim_dbm: float = -20.0
    duty_cycle: float = 0.9
    uplink_latency_s: float = 0.002
    downlink_latency_s: float = 0.002


class Crazyradio:
    """The dongle: tunable carrier, on/off state, interference coupling."""

    def __init__(
        self, environment: IndoorEnvironment, config: Optional[RadioConfig] = None
    ):
        self.environment = environment
        self.config = config or RadioConfig()
        if not CRAZYRADIO_MIN_MHZ <= self.config.freq_mhz <= CRAZYRADIO_MAX_MHZ:
            raise ValueError(
                f"Crazyradio frequency {self.config.freq_mhz} MHz out of range"
            )
        self._on = False
        self.on_off_transitions = 0

    # ------------------------------------------------------------------
    @property
    def on(self) -> bool:
        """Whether the radio (and thus the CRTP link) is active."""
        return self._on

    @property
    def freq_mhz(self) -> float:
        """Current carrier frequency."""
        return self.config.freq_mhz

    @property
    def nrf24_channel(self) -> int:
        """Current nRF24 channel index (0-125)."""
        return nrf24_channel_for_mhz(self.config.freq_mhz)

    def set_frequency(self, freq_mhz: float) -> None:
        """Retune the carrier (as the Fig. 5 experiment does)."""
        if not CRAZYRADIO_MIN_MHZ <= freq_mhz <= CRAZYRADIO_MAX_MHZ:
            raise ValueError(f"frequency {freq_mhz} MHz out of Crazyradio range")
        self.config = RadioConfig(
            freq_mhz=freq_mhz,
            power_at_victim_dbm=self.config.power_at_victim_dbm,
            duty_cycle=self.config.duty_cycle,
            uplink_latency_s=self.config.uplink_latency_s,
            downlink_latency_s=self.config.downlink_latency_s,
        )
        if self._on:
            self._register_interference()

    def set_channel(self, channel: int) -> None:
        """Retune by nRF24 channel index."""
        self.set_frequency(nrf24_channel_center_mhz(channel))

    # ------------------------------------------------------------------
    def turn_on(self) -> None:
        """Enable the link and register the interference source."""
        if not self._on:
            self._on = True
            self.on_off_transitions += 1
            self._register_interference()

    def turn_off(self) -> None:
        """Disable the link and clear the interference source."""
        if self._on:
            self._on = False
            self.on_off_transitions += 1
            self.environment.clear_interference()

    def _register_interference(self) -> None:
        self.environment.set_interference_sources(
            [
                crazyradio_source(
                    self.config.freq_mhz,
                    power_at_receiver_dbm=self.config.power_at_victim_dbm,
                    duty_cycle=self.config.duty_cycle,
                )
            ]
        )


class CrazyradioLink:
    """Packet transport between the station and one UAV.

    The UAV side owns a bounded TX queue (``CRTP_TX_QUEUE_SIZE`` in the
    firmware); the station polls it whenever the radio is on.  Uplink
    packets are delivered to the UAV's receive handler after a small
    latency — or silently lost while the radio is off, exactly like the
    real link.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Crazyradio,
        uav_tx_queue_capacity: int,
        address: str = "radio://0/80/2M",
    ):
        self.sim = sim
        self.radio = radio
        self.address = address
        self.uav_tx_queue: BoundedQueue[CrtpPacket] = BoundedQueue(
            uav_tx_queue_capacity
        )
        self._uav_rx_handler: Optional[Callable[[CrtpPacket], None]] = None
        self.uplink_sent = 0
        self.uplink_lost = 0

    # ------------------------------------------------------------------
    def attach_uav(self, handler: Callable[[CrtpPacket], None]) -> None:
        """Register the UAV-side packet handler."""
        self._uav_rx_handler = handler

    # ------------------------------------------------------------------
    def station_send(self, packet: CrtpPacket) -> bool:
        """Station → UAV.  Returns False if the link is down."""
        if not self.radio.on or self._uav_rx_handler is None:
            self.uplink_lost += 1
            return False
        handler = self._uav_rx_handler
        self.sim.schedule(
            self.radio.config.uplink_latency_s, lambda: handler(packet)
        )
        self.uplink_sent += 1
        return True

    def uav_send(self, packet: CrtpPacket) -> bool:
        """UAV → station: enqueue on the (bounded) firmware TX queue."""
        return self.uav_tx_queue.offer(packet)

    def station_poll(self, max_packets: Optional[int] = None) -> List[CrtpPacket]:
        """Station drains downlink packets; empty while the radio is off."""
        if not self.radio.on:
            return []
        return self.uav_tx_queue.drain(max_packets)
