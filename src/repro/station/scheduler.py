"""Fleet partition strategies and feasibility analysis.

§III-A: "the system can be scaled by simply adding sets of waypoints
and above-mentioned parameters."  This module explores *how* to cut a
waypoint lattice across a fleet: the demo's axis split, a z-layer
split, and a balanced k-means split — and checks each partition against
the battery/endurance envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..uav.battery import BatteryConfig
from ..uav.decks import ESP_DECK, LOCO_DECK
from .waypoints import snake_order, split_between_uavs

__all__ = [
    "PartitionPlan",
    "partition_waypoints",
    "evaluate_partition",
    "PartitionReport",
]

_STRATEGIES = ("axis-y", "axis-x", "layers-z", "kmeans")


@dataclass(frozen=True)
class PartitionPlan:
    """A named fleet partition."""

    strategy: str
    partitions: Tuple[np.ndarray, ...]

    @property
    def n_uavs(self) -> int:
        """Fleet size."""
        return len(self.partitions)


def partition_waypoints(
    points: np.ndarray,
    n_uavs: int,
    strategy: str = "axis-y",
    seed: int = 0,
) -> PartitionPlan:
    """Split ``points`` across ``n_uavs`` with the chosen strategy."""
    pts = np.asarray(points, dtype=float)
    if strategy == "axis-y":
        parts = split_between_uavs(pts, n_uavs=n_uavs, axis=1)
    elif strategy == "axis-x":
        parts = split_between_uavs(pts, n_uavs=n_uavs, axis=0)
    elif strategy == "layers-z":
        parts = split_between_uavs(pts, n_uavs=n_uavs, axis=2)
    elif strategy == "kmeans":
        parts = _balanced_kmeans(pts, n_uavs, seed)
    else:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
    return PartitionPlan(strategy=strategy, partitions=tuple(parts))


def _balanced_kmeans(
    points: np.ndarray, k: int, seed: int, iterations: int = 25
) -> List[np.ndarray]:
    """Lloyd's algorithm with balanced assignment (equal-size clusters)."""
    rng = np.random.default_rng(seed)
    n = len(points)
    if k < 1 or k > n:
        raise ValueError(f"cannot make {k} clusters of {n} points")
    centers = points[rng.choice(n, size=k, replace=False)].copy()
    quota = int(np.ceil(n / k))
    assignment = np.zeros(n, dtype=int)
    for _ in range(iterations):
        # Greedy balanced assignment: points in order of best-margin.
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        counts = np.zeros(k, dtype=int)
        order = np.argsort(distances.min(axis=1))
        new_assignment = np.zeros(n, dtype=int)
        for idx in order:
            for cluster in np.argsort(distances[idx]):
                if counts[cluster] < quota:
                    new_assignment[idx] = cluster
                    counts[cluster] += 1
                    break
        if (new_assignment == assignment).all():
            break
        assignment = new_assignment
        for cluster in range(k):
            members = points[assignment == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
    return [snake_order(points[assignment == c]) for c in range(k)]


@dataclass
class PartitionReport:
    """Feasibility analysis of one partition."""

    strategy: str
    per_uav_waypoints: List[int]
    per_uav_travel_m: List[float]
    per_uav_duration_s: List[float]
    endurance_budget_s: float

    @property
    def feasible(self) -> bool:
        """True when every UAV finishes within the endurance budget."""
        return all(d <= self.endurance_budget_s for d in self.per_uav_duration_s)

    @property
    def makespan_s(self) -> float:
        """Sequential-fleet completion time (UAVs fly one after another)."""
        return float(sum(self.per_uav_duration_s))


def evaluate_partition(
    plan: PartitionPlan,
    flight_leg_s: float = 4.0,
    scan_window_s: float = 3.0,
    takeoff_landing_s: float = 4.0,
    battery: Optional[BatteryConfig] = None,
) -> PartitionReport:
    """Check a partition against the §III-A timing and battery envelope."""
    battery = battery or BatteryConfig()
    scan_fraction = scan_window_s / (flight_leg_s + scan_window_s)
    average_current = (
        battery.hover_current_ma
        + LOCO_DECK.idle_current_ma
        + ESP_DECK.idle_current_ma
        + ESP_DECK.active_current_ma * scan_fraction
        + battery.translate_extra_ma * 0.25
    )
    endurance = battery.endurance_s(average_current)

    waypoints, travel, durations = [], [], []
    for part in plan.partitions:
        pts = np.asarray(part, dtype=float)
        legs = np.linalg.norm(np.diff(pts, axis=0), axis=1) if len(pts) > 1 else []
        waypoints.append(len(pts))
        travel.append(float(np.sum(legs)))
        durations.append(
            takeoff_landing_s + len(pts) * (flight_leg_s + scan_window_s)
        )
    return PartitionReport(
        strategy=plan.strategy,
        per_uav_waypoints=waypoints,
        per_uav_travel_m=travel,
        per_uav_duration_s=durations,
        endurance_budget_s=endurance,
    )
