"""End-to-end campaign runner: the full §III-A data collection.

``run_campaign`` builds the demo environment, plans the 72-waypoint
mission, and flies the fleet sequentially (one Crazyradio, one UAV in
the air at a time — the paper's interference-avoidance choice),
returning the sample log plus per-UAV flight reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..link.crazyradio import Crazyradio, CrazyradioLink, RadioConfig
from ..radio.scenarios import DemoScenario, build_scenario
from ..sim.kernel import Simulator
from ..sim.process import spawn
from ..uav.crazyflie import Crazyflie, UavConfig
from ..uav.firmware import FirmwareConfig
from ..uwb.anchors import corner_layout
from ..uwb.localization import LocalizationMode
from ..wifi.scanner import ScanConfig
from .client import BaseStationClient, ClientConfig, UavFlightReport
from .mission import Mission, plan_demo_mission
from .storage import SampleLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .active import ActiveSamplingConfig
    from .fleet import FleetConfig

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign"]

#: Valid ``CampaignConfig.acquisition`` strategies.
ACQUISITION_STRATEGIES = ("lattice", "active", "fleet")


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign needs beyond the RF scenario."""

    seed: int = 63
    #: Registered scenario name used when no scenario object is passed.
    scenario: str = "condo"
    #: Waypoint acquisition strategy: ``"lattice"`` flies the paper's
    #: fixed grid; ``"active"`` runs the uncertainty-driven loop
    #: (:func:`repro.station.active.run_active_campaign`); ``"fleet"``
    #: runs that loop with K concurrent drones
    #: (:func:`repro.station.fleet.run_fleet_campaign`).
    acquisition: str = "lattice"
    #: Acquisition-loop tunables for ``acquisition="active"`` and
    #: ``"fleet"`` (defaults applied there when left as ``None``).
    active: Optional["ActiveSamplingConfig"] = None
    #: Fleet shape for ``acquisition="fleet"`` (drone count, pairwise
    #: separation, batteries, charging; defaults applied when ``None``).
    fleet: Optional["FleetConfig"] = None
    firmware: FirmwareConfig = field(default_factory=FirmwareConfig.paper_modified)
    localization_mode: str = LocalizationMode.TDOA
    anchor_count: int = 8
    scan_duration_s: float = 3.0
    client: ClientConfig = field(default_factory=ClientConfig)
    radio: RadioConfig = field(default_factory=RadioConfig)
    scan_config: ScanConfig = field(default_factory=ScanConfig)

    # -- job-spec adapter (see repro.serve.spec) -----------------------
    #: Fields a JSON job spec pins at their defaults: hardware and
    #: protocol tunables with no JSON form.  A config customizing any
    #: of them is not spec-representable.
    _JOB_LOCKED = (
        "firmware",
        "localization_mode",
        "anchor_count",
        "scan_duration_s",
        "client",
        "radio",
        "scan_config",
    )

    def to_job_fields(self) -> Dict[str, object]:
        """The JSON-safe field dict a :class:`~repro.serve.RemJobSpec` carries.

        Raises ``ValueError`` when a hardware/protocol field (firmware,
        radio, scanner, client timing, localization) differs from its
        default — those have no JSON form and cannot round-trip
        through a job spec.
        """
        reference = type(self)()
        for name in self._JOB_LOCKED:
            if getattr(self, name) != getattr(reference, name):
                raise ValueError(
                    f"campaign field {name!r} differs from its default and "
                    "cannot be expressed in a job spec"
                )
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "acquisition": self.acquisition,
            "active": None if self.active is None else self.active.to_job_fields(),
            "fleet": None if self.fleet is None else self.fleet.to_job_fields(),
        }

    @classmethod
    def from_job_fields(cls, params: Dict[str, object]) -> "CampaignConfig":
        """Inverse of :meth:`to_job_fields`."""
        from .active import ActiveSamplingConfig
        from .fleet import FleetConfig

        active = params.get("active")
        fleet = params.get("fleet")
        return cls(
            seed=int(params.get("seed", 63)),
            scenario=str(params.get("scenario", "condo")),
            acquisition=str(params.get("acquisition", "lattice")),
            active=(
                None if active is None else ActiveSamplingConfig.from_job_fields(active)
            ),
            fleet=(
                None if fleet is None else FleetConfig.from_job_fields(fleet)
            ),
        )


@dataclass
class CampaignResult:
    """Output of one full campaign."""

    scenario: DemoScenario
    mission: Mission
    log: SampleLog
    reports: List[UavFlightReport]
    duration_s: float

    @property
    def total_samples(self) -> int:
        """Samples across the fleet."""
        return len(self.log)

    def samples_by_uav(self) -> Dict[str, int]:
        """UAV name → collected sample count."""
        return {name: len(sub) for name, sub in self.log.by_uav().items()}

    def summary(self) -> Dict[str, float]:
        """The §III-A headline numbers."""
        return {
            "total_samples": float(len(self.log)),
            "distinct_macs": float(len(self.log.macs())),
            "distinct_ssids": float(len(self.log.ssids())),
            "mean_rss_dbm": self.log.mean_rss_dbm(),
            "duration_s": self.duration_s,
        }


def run_campaign(
    scenario: Optional[DemoScenario] = None,
    mission: Optional[Mission] = None,
    config: Optional[CampaignConfig] = None,
):
    """Fly the full demo campaign and return the collected data.

    Parameters
    ----------
    scenario:
        RF world to fly in; built from ``config.scenario`` (the registry
        name, demo condo by default) when omitted.
    mission:
        Fleet plan; the 72-waypoint / 2-UAV demo mission when omitted.
    config:
        Campaign tunables (firmware, localization mode, timing).  With
        ``config.acquisition == "active"`` the call delegates to
        :func:`repro.station.active.run_active_campaign` and returns an
        :class:`~repro.station.active.ActiveCampaignResult` instead
        (``mission`` must then be omitted — the planner picks the
        waypoints).
    """
    config = config or CampaignConfig()
    if config.acquisition not in ACQUISITION_STRATEGIES:
        raise ValueError(
            f"unknown acquisition {config.acquisition!r}; "
            f"choose from {ACQUISITION_STRATEGIES}"
        )
    if config.acquisition == "active":
        if mission is not None:
            raise ValueError(
                "an explicit mission contradicts acquisition='active' "
                "(the planner chooses the waypoints)"
            )
        from .active import run_active_campaign

        return run_active_campaign(
            scenario=scenario, config=config, active=config.active
        )
    if config.acquisition == "fleet":
        if mission is not None:
            raise ValueError(
                "an explicit mission contradicts acquisition='fleet' "
                "(the planner chooses the waypoints)"
            )
        from .fleet import run_fleet_campaign

        return run_fleet_campaign(
            scenario=scenario,
            config=config,
            fleet=config.fleet,
            active=config.active,
        )
    if scenario is None:
        scenario = build_scenario(config.scenario, seed=config.seed)
    if mission is None:
        mission = plan_demo_mission(scenario)

    sim = Simulator()
    environment = scenario.environment
    radio = Crazyradio(environment, config.radio)
    layout = corner_layout(scenario.flight_volume).subset(config.anchor_count)
    log = SampleLog()
    reports: List[UavFlightReport] = []

    start_time = sim.now
    for uav_conf, plan in mission.assignments:
        link = CrazyradioLink(
            sim,
            radio,
            uav_tx_queue_capacity=config.firmware.crtp_tx_queue_size,
            address=uav_conf.radio_address,
        )
        uav = Crazyflie(
            sim,
            environment,
            layout,
            link,
            config.firmware,
            scenario.streams.fork(f"campaign.{uav_conf.name}"),
            config=UavConfig(
                name=uav_conf.name,
                start_position=uav_conf.start_position,
                scan_duration_s=config.scan_duration_s,
                localization_mode=config.localization_mode,
                rx_gain_offset_db=uav_conf.rx_gain_offset_db,
            ),
            scan_config=config.scan_config,
        )
        client = BaseStationClient(
            sim, radio, link, uav, uav_conf, plan, log, config.client
        )
        process = spawn(sim, client.run(), name=f"client.{uav_conf.name}")
        sim.run()
        if not process.finished:
            raise RuntimeError(
                f"campaign stalled while flying {uav_conf.name} "
                f"(simulated t={sim.now:.1f}s)"
            )
        reports.append(client.report)

    return CampaignResult(
        scenario=scenario,
        mission=mission,
        log=log,
        reports=reports,
        duration_s=sim.now - start_time,
    )
