"""Sample records and the campaign sample log.

Every detected AP at every waypoint becomes one :class:`Sample`: the
``(ssid, rssi, mac, channel)`` tuple from the receiver, annotated with
the UAV's *estimated* position (what the real system knows) and — since
this is a simulation — the ground-truth position too, which lets tests
quantify the annotation error the paper can only bound.

The log round-trips to CSV so campaigns can be archived and the ML
stage re-run without re-flying.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = ["Sample", "SampleLog"]


@dataclass(frozen=True)
class Sample:
    """One location-annotated AP observation."""

    uav_name: str
    waypoint_index: int
    timestamp_s: float
    x: float
    y: float
    z: float
    true_x: float
    true_y: float
    true_z: float
    ssid: str
    rssi_dbm: int
    mac: str
    channel: int

    @property
    def position(self) -> Tuple[float, float, float]:
        """Annotated (estimated) position."""
        return (self.x, self.y, self.z)

    @property
    def true_position(self) -> Tuple[float, float, float]:
        """Ground-truth position (simulation-only knowledge)."""
        return (self.true_x, self.true_y, self.true_z)


class SampleLog:
    """An append-only collection of samples with summary helpers."""

    def __init__(self, samples: Optional[Iterable[Sample]] = None):
        self._samples: List[Sample] = list(samples) if samples else []

    # ------------------------------------------------------------------
    def append(self, sample: Sample) -> None:
        """Add one sample."""
        self._samples.append(sample)

    def extend(self, samples: Iterable[Sample]) -> None:
        """Add many samples."""
        self._samples.extend(samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> Sample:
        return self._samples[index]

    @property
    def samples(self) -> Tuple[Sample, ...]:
        """Immutable view of the samples."""
        return tuple(self._samples)

    # ------------------------------------------------------------------
    # summary statistics (the §III-A campaign numbers)
    # ------------------------------------------------------------------
    def macs(self) -> Set[str]:
        """Distinct BSSIDs observed."""
        return {s.mac for s in self._samples}

    def ssids(self) -> Set[str]:
        """Distinct SSIDs observed."""
        return {s.ssid for s in self._samples}

    def mean_rss_dbm(self) -> float:
        """Mean reported RSS (NaN when empty)."""
        if not self._samples:
            return float("nan")
        return sum(s.rssi_dbm for s in self._samples) / len(self._samples)

    def by_uav(self) -> Dict[str, "SampleLog"]:
        """Split into per-UAV logs."""
        out: Dict[str, List[Sample]] = {}
        for s in self._samples:
            out.setdefault(s.uav_name, []).append(s)
        return {name: SampleLog(samples) for name, samples in out.items()}

    def by_mac(self) -> Dict[str, "SampleLog"]:
        """Split into per-BSSID logs."""
        out: Dict[str, List[Sample]] = {}
        for s in self._samples:
            out.setdefault(s.mac, []).append(s)
        return {mac: SampleLog(samples) for mac, samples in out.items()}

    def samples_per_waypoint(self) -> Dict[Tuple[str, int], int]:
        """(uav, waypoint) → sample count (the Fig. 6 series)."""
        out: Dict[Tuple[str, int], int] = {}
        for s in self._samples:
            key = (s.uav_name, s.waypoint_index)
            out[key] = out.get(key, 0) + 1
        return out

    def annotation_error_m(self) -> List[float]:
        """Per-sample distance between annotated and true positions."""
        errors = []
        for s in self._samples:
            dx = s.x - s.true_x
            dy = s.y - s.true_y
            dz = s.z - s.true_z
            errors.append((dx * dx + dy * dy + dz * dz) ** 0.5)
        return errors

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    _FIELDS = [f.name for f in fields(Sample)]
    #: Fields serialized through ``repr(float(...))``: ``str()`` of a
    #: numpy scalar prints the *narrow-type* shortest repr (e.g. a
    #: float32 position renders as "1.234567"), which re-parses to a
    #: different float64 — a silently lossy archive.  ``float()`` first
    #: pins the exact float64 value; ``repr`` round-trips it exactly.
    _FLOAT_FIELDS = frozenset(
        {"timestamp_s", "x", "y", "z", "true_x", "true_y", "true_z"}
    )

    def save_csv(self, path) -> None:
        """Write the log as CSV (one row per sample, exact floats)."""
        with open(Path(path), "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._FIELDS)
            for s in self._samples:
                writer.writerow(
                    [
                        repr(float(value))
                        if name in self._FLOAT_FIELDS
                        else value
                        for name, value in (
                            (n, getattr(s, n)) for n in self._FIELDS
                        )
                    ]
                )

    @classmethod
    def load_csv(cls, path) -> "SampleLog":
        """Read a log written by :meth:`save_csv`."""
        log = cls()
        with open(Path(path), newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                log.append(
                    Sample(
                        uav_name=row["uav_name"],
                        waypoint_index=int(row["waypoint_index"]),
                        timestamp_s=float(row["timestamp_s"]),
                        x=float(row["x"]),
                        y=float(row["y"]),
                        z=float(row["z"]),
                        true_x=float(row["true_x"]),
                        true_y=float(row["true_y"]),
                        true_z=float(row["true_z"]),
                        ssid=row["ssid"],
                        rssi_dbm=int(row["rssi_dbm"]),
                        mac=row["mac"],
                        channel=int(row["channel"]),
                    )
                )
        return log
