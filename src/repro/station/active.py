"""Uncertainty-driven active sampling campaigns.

The paper flies a fixed 72-waypoint lattice and trains the REM
afterwards (§III-A).  Since generation is *autonomous*, the fleet can
instead spend flight time where the map is least certain: fly a small
exploratory batch, refit online, score the remaining candidate
waypoints by predictive uncertainty minus travel cost, fly the best
batch, and repeat until an RMSE target or the waypoint budget fires.

The loop composes the pieces that already exist:

* candidates come from the same :func:`~.waypoints.waypoint_grid`
  lattice the fixed campaign uses (so comparisons are apples to
  apples), seeded by deterministic farthest-point
  :func:`~.waypoints.spread_subset`;
* each batch flies through :func:`~.campaign.run_campaign` with a
  single-UAV :func:`~.mission.plan_batch_mission` — the same client,
  radio-shutdown protocol and sample annotation as §II-C; every scan
  inside those flights prices its sweep through the environment's
  batched link-budget engine (one wall-set crossing pass per sweep);
* scans feed an :class:`~.online.OnlineRemBuilder`, whose model's
  batched :meth:`~repro.core.predictors.Predictor.uncertainty_grid`
  scores the candidates (kriging variance natively, distance or
  disagreement proxies elsewhere);
* batch sizes respect the §III-A battery duty cycle via
  :meth:`~repro.uav.battery.BatteryConfig.endurance_waypoints`, and
  no-fly cuboids are excluded from the candidate set outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.predictors import Predictor
from ..radio.geometry import Cuboid
from ..radio.scenarios import DemoScenario, build_scenario
from ..uav.battery import BatteryConfig
from ..wifi.beacon import ScanRecord
from .campaign import CampaignConfig, run_campaign
from .mission import plan_batch_mission
from .online import OnlineRemBuilder
from .storage import SampleLog
from .waypoints import snake_order, spread_subset, waypoint_grid

__all__ = [
    "ActiveSamplingConfig",
    "ActiveSamplingPlanner",
    "ActiveRound",
    "ActiveCampaignResult",
    "run_active_campaign",
]


@dataclass(frozen=True)
class ActiveSamplingConfig:
    """Tunables of the uncertainty-driven acquisition loop."""

    #: Exploratory first batch (farthest-point spread over the lattice).
    seed_waypoints: int = 12
    #: Waypoints acquired per subsequent round.
    batch_size: int = 6
    #: Hard budget: stop once this many waypoints have been flown.
    budget_waypoints: int = 72
    #: Stop as soon as the holdout RMSE drops to this level (dB);
    #: ``None`` disables the accuracy stopping rule.
    target_rmse_dbm: Optional[float] = None
    #: Plateau rule: stop after this many consecutive rounds improving
    #: the holdout RMSE by less than ``min_improvement_dbm`` (0 = off).
    patience_rounds: int = 0
    min_improvement_dbm: float = 0.05
    #: Travel cost: dB of uncertainty one meter of flying must buy.
    travel_weight_db_per_m: float = 0.5
    #: Candidate lattice over the flight volume (the fixed campaign's
    #: 6 x 4 x 3 by default, so budgets compare directly to 72).
    lattice_nx: int = 6
    lattice_ny: int = 4
    lattice_nz: int = 3
    lattice_margin_m: float = 0.25
    #: Cuboids the planner must never schedule a scan inside.
    no_fly: Tuple[Cuboid, ...] = ()
    #: Battery model bounding single-flight batch sizes.
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    flight_leg_s: float = 4.0
    scan_window_s: float = 3.0
    #: Online-builder knobs (the refit cadence applies *within* a batch;
    #: a refit is always forced when a batch lands).
    refit_every_scans: int = 6
    holdout_fraction: float = 0.25
    builder_seed: int = 5
    predictor_factory: Optional[Callable[[], Predictor]] = None

    def __post_init__(self) -> None:
        if self.seed_waypoints < 1:
            raise ValueError("seed_waypoints must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.budget_waypoints < self.seed_waypoints:
            raise ValueError("budget_waypoints must cover the seed batch")
        if self.travel_weight_db_per_m < 0:
            raise ValueError("travel_weight_db_per_m must be >= 0")
        if self.patience_rounds < 0:
            raise ValueError("patience_rounds must be >= 0")

    # -- job-spec adapter (see repro.serve.spec) -----------------------
    #: Scalar tunables a JSON job spec can carry verbatim.  Everything
    #: else — no-fly cuboids, the battery model, predictor factories —
    #: is a live Python object and must stay at its default for a
    #: config to be spec-representable.
    _JOB_FIELDS = (
        "seed_waypoints",
        "batch_size",
        "budget_waypoints",
        "target_rmse_dbm",
        "patience_rounds",
        "min_improvement_dbm",
        "travel_weight_db_per_m",
        "lattice_nx",
        "lattice_ny",
        "lattice_nz",
        "lattice_margin_m",
        "flight_leg_s",
        "scan_window_s",
        "refit_every_scans",
        "holdout_fraction",
        "builder_seed",
    )

    def to_job_fields(self) -> Dict[str, object]:
        """The JSON-safe field dict a :class:`~repro.serve.RemJobSpec` carries.

        Raises ``ValueError`` when a non-serializable field (``no_fly``,
        ``battery``, ``predictor_factory``) differs from its default —
        such configs cannot round-trip through a job spec.
        """
        reference = type(self)()
        for name in ("no_fly", "battery", "predictor_factory"):
            if getattr(self, name) != getattr(reference, name):
                raise ValueError(
                    f"active-sampling field {name!r} is not JSON-serializable "
                    "and differs from its default; it cannot be expressed "
                    "in a job spec"
                )
        return {name: getattr(self, name) for name in self._JOB_FIELDS}

    #: Integer-typed job fields (JSON clients often send 48.0 for 48;
    #: coercing here keeps configs well-typed and job digests stable).
    _INT_JOB_FIELDS = frozenset(
        {
            "seed_waypoints",
            "batch_size",
            "budget_waypoints",
            "patience_rounds",
            "lattice_nx",
            "lattice_ny",
            "lattice_nz",
            "refit_every_scans",
            "builder_seed",
        }
    )

    @classmethod
    def from_job_fields(cls, params: Dict[str, object]) -> "ActiveSamplingConfig":
        """Inverse of :meth:`to_job_fields` (unknown keys raise)."""
        unknown = sorted(set(params) - set(cls._JOB_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown active-sampling job field(s) {unknown}; "
                f"choose from {sorted(cls._JOB_FIELDS)}"
            )
        coerced: Dict[str, object] = {}
        for key, value in params.items():
            if key in cls._INT_JOB_FIELDS:
                coerced[key] = int(value)
            elif value is not None:
                coerced[key] = float(value)
            else:
                coerced[key] = None
        return cls(**coerced)


@dataclass
class ActiveRound:
    """One acquisition round: what flew and what the map looked like."""

    round_index: int
    waypoints: np.ndarray
    total_waypoints: int
    samples_ingested: int
    holdout_rmse_dbm: Optional[float]
    #: Mean predictive std over the not-yet-flown candidates *after*
    #: this round's refit (the signal the next selection maximizes).
    mean_candidate_uncertainty_db: Optional[float]


@dataclass
class ActiveCampaignResult:
    """Output of one full active campaign."""

    scenario: DemoScenario
    config: CampaignConfig
    active: ActiveSamplingConfig
    log: SampleLog
    rounds: List[ActiveRound]
    builder: OnlineRemBuilder
    stop_reason: str
    duration_s: float

    @property
    def waypoints_flown(self) -> int:
        """Waypoints scanned across all rounds."""
        return self.rounds[-1].total_waypoints if self.rounds else 0

    @property
    def final_rmse_dbm(self) -> Optional[float]:
        """Holdout RMSE after the last refit."""
        for round_ in reversed(self.rounds):
            if round_.holdout_rmse_dbm is not None:
                return round_.holdout_rmse_dbm
        return None

    def rmse_trajectory(self) -> List[Tuple[int, Optional[float]]]:
        """(waypoints flown, holdout RMSE) per round — the learning curve."""
        return [(r.total_waypoints, r.holdout_rmse_dbm) for r in self.rounds]

    def summary(self) -> Dict[str, float]:
        """Headline numbers of the run."""
        return {
            "waypoints_flown": float(self.waypoints_flown),
            "budget_waypoints": float(self.active.budget_waypoints),
            "total_samples": float(len(self.log)),
            "distinct_macs": float(len(self.log.macs())),
            "rounds": float(len(self.rounds)),
            "final_rmse_dbm": (
                float("nan")
                if self.final_rmse_dbm is None
                else self.final_rmse_dbm
            ),
            "duration_s": self.duration_s,
        }


class ActiveSamplingPlanner:
    """Greedy batch selection over a candidate lattice.

    Scores every unvisited candidate as ``uncertainty - travel_weight *
    distance`` and builds each batch as a short tour: after every pick
    the travel cost re-anchors on the picked waypoint, so batches come
    out compact rather than scattered across the volume.  The tour is
    a selection-time cost model; the campaign re-orders each batch as
    a serpentine before flying (see ``run_active_campaign``).
    """

    def __init__(
        self,
        candidates: np.ndarray,
        travel_weight_db_per_m: float = 0.5,
        no_fly: Tuple[Cuboid, ...] = (),
    ):
        pts = np.asarray(candidates, dtype=float).reshape(-1, 3)
        allowed = np.ones(len(pts), dtype=bool)
        for zone in no_fly:
            allowed &= ~zone.contains_many(pts)
        if not allowed.any():
            raise ValueError("no-fly zones exclude every candidate waypoint")
        self.candidates = pts[allowed]
        self.travel_weight = float(travel_weight_db_per_m)
        self._visited = np.zeros(len(self.candidates), dtype=bool)

    # ------------------------------------------------------------------
    @property
    def remaining_indices(self) -> np.ndarray:
        """Indices of candidates not yet scheduled."""
        return np.flatnonzero(~self._visited)

    @property
    def remaining_points(self) -> np.ndarray:
        """Unvisited candidate coordinates."""
        return self.candidates[~self._visited]

    @property
    def exhausted(self) -> bool:
        """True once every candidate has been scheduled."""
        return bool(self._visited.all())

    def mark_visited(self, indices: np.ndarray) -> None:
        """Record candidates as flown (they leave the pool)."""
        self._visited[np.asarray(indices, dtype=int)] = True

    def mark_unvisited(self, indices: np.ndarray) -> None:
        """Return candidates to the pool (they become selectable again).

        The fleet planner's anti-collision repair bumps waypoints out
        of a round after selection; un-marking them keeps the bumped
        waypoints eligible for later rounds instead of silently lost.
        """
        self._visited[np.asarray(indices, dtype=int)] = False

    # ------------------------------------------------------------------
    def seed_batch(self, count: int) -> np.ndarray:
        """The exploratory first batch: farthest-point candidate indices."""
        remaining = self.remaining_indices
        count = min(count, len(remaining))
        picked = remaining[spread_subset(self.candidates[remaining], count)]
        self.mark_visited(picked)
        return picked

    def select_batch(
        self,
        uncertainty_db: np.ndarray,
        start_position: np.ndarray,
        batch_size: int,
    ) -> np.ndarray:
        """Greedy uncertainty-minus-travel tour over the remaining pool.

        ``uncertainty_db`` scores ``remaining_points`` row for row.
        Returns global candidate indices (already marked visited), at
        most ``batch_size`` of them.
        """
        remaining = self.remaining_indices
        scores = np.asarray(uncertainty_db, dtype=float).reshape(-1)
        if scores.shape != remaining.shape:
            raise ValueError(
                f"got {scores.shape[0]} scores for {len(remaining)} "
                "remaining candidates"
            )
        picked: List[int] = []
        anchor = np.asarray(start_position, dtype=float)
        pool = remaining.copy()
        pool_scores = scores.copy()
        while pool.size and len(picked) < batch_size:
            travel = np.linalg.norm(self.candidates[pool] - anchor, axis=1)
            gain = pool_scores - self.travel_weight * travel
            best = int(np.argmax(gain))
            picked.append(int(pool[best]))
            anchor = self.candidates[pool[best]]
            pool = np.delete(pool, best)
            pool_scores = np.delete(pool_scores, best)
        batch = np.asarray(picked, dtype=int)
        self.mark_visited(batch)
        return batch


# ----------------------------------------------------------------------
def _fly_batch(
    scenario: DemoScenario,
    config: CampaignConfig,
    active: ActiveSamplingConfig,
    waypoints: np.ndarray,
    log: SampleLog,
    builder: OnlineRemBuilder,
    flight_name: str,
) -> float:
    """Fly one batch through the standard campaign machinery.

    Samples land in ``log`` and, grouped per scan, in ``builder``;
    returns the simulated flight duration.  ``waypoints`` are flown in
    the given order — the caller is responsible for making the order
    flyable under the fixed 4-second legs (long hops mean the UAV
    scans before it arrives, silently sampling the wrong place).
    ``flight_name`` must be unique per batch — it keys the scenario's
    RNG stream fork, so reusing a name would replay identical fading
    draws every flight.
    """
    mission = plan_batch_mission(
        waypoints,
        flight_leg_s=active.flight_leg_s,
        scan_window_s=active.scan_window_s,
        uav_name=flight_name,
    )
    result = run_campaign(scenario=scenario, mission=mission, config=config)
    by_scan: Dict[Tuple[str, int], List] = {}
    for sample in result.log:
        by_scan.setdefault((sample.uav_name, sample.waypoint_index), []).append(
            sample
        )
    for key in sorted(by_scan):
        samples = by_scan[key]
        records = [
            ScanRecord(
                ssid=s.ssid, rssi_dbm=s.rssi_dbm, mac=s.mac, channel=s.channel
            )
            for s in samples
        ]
        builder.add_scan(samples[0].position, records)
    log.extend(result.log)
    return result.duration_s


def run_active_campaign(
    scenario: Optional[DemoScenario] = None,
    config: Optional[CampaignConfig] = None,
    active: Optional[ActiveSamplingConfig] = None,
    round_callback: Optional[
        Callable[[ActiveRound, OnlineRemBuilder], None]
    ] = None,
) -> ActiveCampaignResult:
    """Run the full uncertainty-driven campaign loop.

    Parameters
    ----------
    scenario:
        RF world; built from ``config.scenario`` (the registry name)
        when omitted — active campaigns work in every registered
        scenario.
    config:
        Campaign tunables (firmware, radio, timing); its
        ``acquisition`` field is ignored here (this *is* the active
        path).
    active:
        Acquisition-loop tunables; defaults reproduce the demo setup.
    round_callback:
        Called after every round with the fresh :class:`ActiveRound`
        and the builder (whose model is current); benchmarks use it to
        score each intermediate map against ground truth without
        replaying the campaign.

    Stopping rules, checked after every round in this order: accuracy
    (``target_rmse_dbm``), plateau (``patience_rounds`` rounds without
    ``min_improvement_dbm``), budget (``budget_waypoints``), and
    exhaustion of the candidate lattice.
    """
    config = config or CampaignConfig()
    active = active or (
        config.active if config.active is not None else ActiveSamplingConfig()
    )
    if config.acquisition != "lattice":
        # Inner flights must take the plain path or they would recurse.
        config = replace(config, acquisition="lattice")
    if scenario is None:
        scenario = build_scenario(config.scenario, seed=config.seed)

    candidates = waypoint_grid(
        scenario.flight_volume,
        nx=active.lattice_nx,
        ny=active.lattice_ny,
        nz=active.lattice_nz,
        margin=active.lattice_margin_m,
    )
    planner = ActiveSamplingPlanner(
        candidates,
        travel_weight_db_per_m=active.travel_weight_db_per_m,
        no_fly=active.no_fly,
    )
    builder = OnlineRemBuilder(
        predictor_factory=active.predictor_factory,
        refit_every_scans=active.refit_every_scans,
        holdout_fraction=active.holdout_fraction,
        seed=active.builder_seed,
    )
    # One flight per batch: the battery bounds how big a batch can be.
    max_batch = active.battery.endurance_waypoints(
        flight_leg_s=active.flight_leg_s, scan_window_s=active.scan_window_s
    )

    log = SampleLog()
    rounds: List[ActiveRound] = []
    duration_s = 0.0
    stop_reason = "budget"
    best_rmse: Optional[float] = None
    stale_rounds = 0

    seed_batch = planner.seed_batch(min(active.seed_waypoints, max_batch))
    # Every batch flies as a serpentine: the campaign's fixed 4-second
    # legs assume short hops, and a scan commanded before the UAV
    # arrives gets annotated wherever the UAV actually is — sampling
    # the wrong place.  The planner's greedy tour is therefore only a
    # selection-time travel-cost model; execution re-orders for flight.
    batch_points = snake_order(planner.candidates[seed_batch])
    round_index = 0
    while True:
        duration_s += _fly_batch(
            scenario,
            config,
            active,
            batch_points,
            log,
            builder,
            flight_name=f"UAV-A/flight-{round_index:02d}",
        )
        snapshot = builder.refit_now()
        rmse = snapshot.holdout_rmse_dbm if snapshot else None
        remaining = planner.remaining_points
        # One batched uncertainty pass per round serves both the round
        # record and the next batch's selection scores below (the model
        # and candidate pool do not change in between).
        uncertainty: Optional[np.ndarray] = None
        mean_uncertainty: Optional[float] = None
        if builder.ready and len(remaining):
            uncertainty = builder.uncertainty(remaining)
            mean_uncertainty = float(uncertainty.mean())
        total = (rounds[-1].total_waypoints if rounds else 0) + len(batch_points)
        rounds.append(
            ActiveRound(
                round_index=round_index,
                waypoints=batch_points,
                total_waypoints=total,
                samples_ingested=builder.samples_ingested,
                holdout_rmse_dbm=rmse,
                mean_candidate_uncertainty_db=mean_uncertainty,
            )
        )
        round_index += 1
        if round_callback is not None:
            round_callback(rounds[-1], builder)

        # --- stopping rules ------------------------------------------
        if (
            active.target_rmse_dbm is not None
            and rmse is not None
            and rmse <= active.target_rmse_dbm
        ):
            stop_reason = "target_rmse"
            break
        if active.patience_rounds > 0 and rmse is not None:
            if best_rmse is None or rmse < best_rmse - active.min_improvement_dbm:
                best_rmse, stale_rounds = rmse, 0
            else:
                stale_rounds += 1
                if stale_rounds >= active.patience_rounds:
                    stop_reason = "plateau"
                    break
        if total >= active.budget_waypoints:
            stop_reason = "budget"
            break
        if planner.exhausted:
            stop_reason = "lattice_exhausted"
            break

        # --- next batch ----------------------------------------------
        if uncertainty is not None:
            scores = uncertainty
        else:
            # No model yet (degenerate seed): keep exploring uniformly.
            scores = np.zeros(len(remaining))
        size = min(active.batch_size, max_batch, active.budget_waypoints - total)
        # Travel cost anchors on the last waypoint actually flown
        # (rounds store flown order), then the selected batch is
        # re-serpentined for the short-hop flight constraint above.
        batch = planner.select_batch(scores, batch_points[-1], size)
        batch_points = snake_order(planner.candidates[batch])

    return ActiveCampaignResult(
        scenario=scenario,
        config=config,
        active=active,
        log=log,
        rounds=rounds,
        builder=builder,
        stop_reason=stop_reason,
        duration_s=duration_s,
    )
