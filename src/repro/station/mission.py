"""Mission descriptions: per-UAV waypoint plans and fleet parameters.

The client is "configured to be able to control multiple UAVs with a
matching set of waypoints and parameters such as radio address, starting
position, and yaw" (§III-A); scaling the system means adding entries to
the mission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..radio.scenarios import DemoScenario
from .waypoints import split_between_uavs, waypoint_grid

__all__ = [
    "WaypointPlan",
    "UavMissionConfig",
    "Mission",
    "plan_demo_mission",
    "plan_batch_mission",
]


@dataclass(frozen=True)
class WaypointPlan:
    """The scan schedule of one UAV."""

    waypoints: Tuple[Tuple[float, float, float], ...]
    flight_leg_s: float = 4.0
    scan_window_s: float = 3.0

    def __len__(self) -> int:
        return len(self.waypoints)

    @property
    def waypoint_array(self) -> np.ndarray:
        """(N, 3) waypoint array."""
        return np.asarray(self.waypoints, dtype=float)

    def expected_duration_s(self) -> float:
        """Lower bound on flight time: legs + scan windows (§III-A)."""
        return len(self.waypoints) * (self.flight_leg_s + self.scan_window_s)


@dataclass(frozen=True)
class UavMissionConfig:
    """Per-UAV parameters the client is configured with."""

    name: str
    radio_address: str
    start_position: Tuple[float, float, float]
    yaw_deg: float = 0.0
    #: Receiver-gain calibration of this UAV's ESP deck (unit spread).
    rx_gain_offset_db: float = 0.0


@dataclass
class Mission:
    """A full campaign: ordered (UAV, plan) pairs flown sequentially."""

    assignments: List[Tuple[UavMissionConfig, WaypointPlan]] = field(
        default_factory=list
    )

    def add(self, uav: UavMissionConfig, plan: WaypointPlan) -> None:
        """Append a UAV and its plan to the sequence."""
        self.assignments.append((uav, plan))

    @property
    def total_waypoints(self) -> int:
        """Waypoints across the whole fleet."""
        return sum(len(plan) for _, plan in self.assignments)


def plan_batch_mission(
    waypoints: np.ndarray,
    flight_leg_s: float = 4.0,
    scan_window_s: float = 3.0,
    uav_name: str = "UAV-A",
    start_position: Tuple[float, float, float] = (0.3, 0.3, 0.0),
) -> Mission:
    """A single-UAV mission over an explicit waypoint batch.

    The active-sampling loop flies one of these per acquisition round:
    the planner picks the batch, this wraps it in the same mission
    machinery the fixed-lattice campaign uses (so the client, radio
    shutdown protocol and sample annotation are identical).  Waypoints
    are flown in the given order — order them for short hops before
    calling (``snake_order``); the fixed 4-second legs assume adjacent
    waypoints.
    """
    pts = np.asarray(waypoints, dtype=float).reshape(-1, 3)
    if len(pts) == 0:
        raise ValueError("batch mission needs at least one waypoint")
    mission = Mission()
    mission.add(
        UavMissionConfig(
            name=uav_name,
            radio_address="radio://0/80/2M",
            start_position=start_position,
            yaw_deg=0.0,
        ),
        WaypointPlan(
            waypoints=tuple(tuple(float(v) for v in p) for p in pts),
            flight_leg_s=flight_leg_s,
            scan_window_s=scan_window_s,
        ),
    )
    return mission


def plan_demo_mission(
    scenario: DemoScenario,
    n_uavs: int = 2,
    nx: int = 6,
    ny: int = 4,
    nz: int = 3,
    margin: float = 0.25,
    flight_leg_s: float = 4.0,
    scan_window_s: float = 3.0,
    uav_b_rx_offset_db: float = -3.0,
) -> Mission:
    """The paper's demo mission: 72 waypoints, 36 per UAV.

    UAV A covers the −y half (toward the building center), UAV B the +y
    half next to the thick wall; B's ESP deck carries a small negative
    gain offset (hand-soldered unit spread) — see DESIGN.md.
    """
    grid = waypoint_grid(scenario.flight_volume, nx=nx, ny=ny, nz=nz, margin=margin)
    partitions = split_between_uavs(grid, n_uavs=n_uavs, axis=1)
    mission = Mission()
    for index, part in enumerate(partitions):
        name = chr(ord("A") + index)
        start = (0.3 + 0.4 * index, 0.3, 0.0)
        mission.add(
            UavMissionConfig(
                name=f"UAV-{name}",
                radio_address=f"radio://0/{80 + index}/2M",
                start_position=start,
                yaw_deg=0.0,
                rx_gain_offset_db=(uav_b_rx_offset_db if index > 0 else 0.0),
            ),
            WaypointPlan(
                waypoints=tuple(tuple(float(v) for v in p) for p in part),
                flight_leg_s=flight_leg_s,
                scan_window_s=scan_window_s,
            ),
        )
    return mission
