"""The §III-A endurance test.

"A UAV was manually flown until it became less responsive and its
motions erratic, considering a fully charged standard battery, eight
active anchors in TWR mode, periodic scanning mode with an interval of
8 sec, with a beacon scan duration of around 2 sec.  The UAV was kept in
a steady position about 1 m above ground level...  The UAV was able to
perform 36 scans over a timespan of 6 min and 12 sec."

:func:`run_endurance_test` reproduces that protocol on the simulated
vehicle and reports scans completed and time-to-erratic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..link.crazyradio import Crazyradio, CrazyradioLink, RadioConfig
from ..radio.scenarios import DemoScenario, build_demo_scenario
from ..sim.kernel import Simulator
from ..sim.process import Timeout, spawn
from ..uav import app_protocol as proto
from ..uav.crazyflie import Crazyflie, FlightState, UavConfig
from ..uav.firmware import FirmwareConfig
from ..uwb.anchors import corner_layout
from ..uwb.localization import LocalizationMode

__all__ = ["EnduranceResult", "run_endurance_test"]


@dataclass
class EnduranceResult:
    """Outcome of the hovering endurance protocol."""

    scans_completed: int
    time_to_erratic_s: float
    final_state: FlightState
    battery_remaining_fraction: float

    @property
    def minutes_seconds(self) -> str:
        """Human-readable duration, e.g. '6 min 12 s'."""
        minutes = int(self.time_to_erratic_s // 60)
        seconds = int(round(self.time_to_erratic_s - 60 * minutes))
        return f"{minutes} min {seconds} s"


def run_endurance_test(
    scenario: Optional[DemoScenario] = None,
    seed: int = 63,
    scan_interval_s: float = 8.0,
    scan_duration_s: float = 2.0,
    hover_height_m: float = 1.0,
    localization_mode: str = LocalizationMode.TWR,
    anchor_count: int = 8,
    firmware: Optional[FirmwareConfig] = None,
    max_sim_time_s: float = 1200.0,
) -> EnduranceResult:
    """Hover with periodic scans until the battery turns erratic."""
    if scenario is None:
        scenario = build_demo_scenario(seed=seed)
    firmware = firmware or FirmwareConfig.paper_modified()

    sim = Simulator()
    radio = Crazyradio(scenario.environment, RadioConfig())
    link = CrazyradioLink(sim, radio, uav_tx_queue_capacity=firmware.crtp_tx_queue_size)
    hover = (
        scenario.flight_volume.center[0],
        scenario.flight_volume.center[1],
        hover_height_m,
    )
    uav = Crazyflie(
        sim,
        scenario.environment,
        corner_layout(scenario.flight_volume).subset(anchor_count),
        link,
        firmware,
        scenario.streams.fork("endurance"),
        config=UavConfig(
            name="endurance",
            start_position=(hover[0], hover[1], 0.0),
            scan_duration_s=scan_duration_s,
            localization_mode=localization_mode,
        ),
    )

    outcome = {}

    def protocol():
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(hover_height_m)))
        yield Timeout(2.0)
        started = sim.now
        while not uav.battery.erratic and uav.state is FlightState.FLYING:
            # Keep the commander fed during the 8 s between scans.
            idle = 0.0
            while idle < scan_interval_s:
                link.station_send(proto.encode(proto.Goto(*hover)))
                yield Timeout(0.2)
                idle += 0.2
                if uav.battery.erratic or uav.state is not FlightState.FLYING:
                    break
            if uav.battery.erratic or uav.state is not FlightState.FLYING:
                break
            link.station_send(proto.encode(proto.StartScan()))
            yield Timeout(0.1)
            radio.turn_off()
            yield Timeout(uav.config.scan_startup_s + scan_duration_s + 0.2)
            radio.turn_on()
            link.station_poll()  # discard results; endurance only counts scans
        outcome["time"] = sim.now - started
        link.station_send(proto.encode(proto.Land()))
        yield Timeout(uav.config.landing_time_s + 0.2)
        radio.turn_off()

    process = spawn(sim, protocol(), name="endurance.protocol")
    sim.run(until=max_sim_time_s)
    if not process.finished:
        raise RuntimeError("endurance protocol did not terminate")

    return EnduranceResult(
        scans_completed=uav.scans_completed,
        time_to_erratic_s=outcome.get("time", 0.0),
        final_state=uav.state,
        battery_remaining_fraction=uav.battery.remaining_fraction,
    )
