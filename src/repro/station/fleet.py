"""Multi-UAV fleet acquisition: partition, fly concurrently, merge.

The paper collects its map with drones flown one at a time (§III-A's
single shared Crazyradio).  Fleet acquisition keeps the uncertainty
-driven loop of :mod:`.active` but spends each round's waypoint batch
across **K drones flying at once**:

1. **Partition** — the planner's greedy batch is split spatially with
   the balanced k-means strategy of :func:`.scheduler.partition_waypoints`
   (each drone gets a compact, snake-ordered region tour), capped by
   every drone's own :meth:`~repro.uav.battery.BatteryConfig
   .endurance_waypoints`, and repaired against the pairwise
   anti-collision separation (conflicting waypoints return to the
   candidate pool).
2. **Fly** — all K tours run in *one* :class:`~repro.sim.kernel
   .Simulator` as interleaved client processes, each drone on its own
   radio address and its own name-keyed RNG stream fork.  Because
   streams fork by name (order-independent) and drones share no
   mutable state, each drone's samples are identical to a solo flight
   — which is also why the optional ``workers`` mode may fan rounds
   out over OS processes (one kernel per drone) and get byte-identical
   results back faster.
3. **Merge** — per-drone sample logs merge into one stream keyed on
   ``(timestamp, drone, intra-drone order)`` before feeding the shared
   :class:`~.online.OnlineRemBuilder`, so the combined log — and hence
   the artifact built from it — is a pure function of the spec, no
   matter how the kernel or the OS interleaved the flights.

With ``n_drones=1`` every step degenerates exactly to
:func:`.active.run_active_campaign`: same waypoints, same RNG forks,
same sample order, same artifact bytes (pinned by tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..link.crazyradio import Crazyradio, CrazyradioLink
from ..radio.scenarios import DemoScenario, build_scenario
from ..sim.kernel import Simulator
from ..sim.process import spawn
from ..uav.battery import BatteryConfig
from ..uav.crazyflie import Crazyflie, UavConfig
from ..uwb.anchors import corner_layout
from ..wifi.beacon import ScanRecord
from .active import ActiveSamplingConfig, ActiveSamplingPlanner
from .campaign import CampaignConfig
from .client import BaseStationClient, UavFlightReport
from .mission import plan_batch_mission
from .online import OnlineRemBuilder
from .scheduler import partition_waypoints
from .storage import Sample, SampleLog
from .waypoints import waypoint_grid

__all__ = [
    "FleetConfig",
    "FleetRoundPlan",
    "FleetRound",
    "FleetCampaignResult",
    "drone_name",
    "plan_fleet_round",
    "first_separation_conflict",
    "merge_fleet_samples",
    "run_fleet_campaign",
]

#: Battery dict keys a job spec may carry (see ``FleetConfig.batteries``).
_BATTERY_FIELDS = (
    "capacity_mah",
    "hover_current_ma",
    "translate_extra_ma",
    "erratic_reserve_fraction",
)


def drone_name(index: int) -> str:
    """Fleet naming scheme: drone 0 is ``UAV-A``, drone 1 ``UAV-B``, ...

    Drone 0 deliberately shares the single-UAV campaign's name (and
    radio address and start pad), which is what makes a one-drone fleet
    replay the active path's RNG stream forks exactly.
    """
    if not 0 <= index < 26:
        raise ValueError(f"drone index must be in [0, 26), got {index}")
    return f"UAV-{chr(ord('A') + index)}"


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of a concurrent multi-drone acquisition fleet."""

    #: Drones flying each round (1 degenerates to the active loop).
    n_drones: int = 2
    #: Pairwise anti-collision distance enforced between simultaneous
    #: batch positions at planning time (0 disables the check).
    min_separation_m: float = 0.5
    #: Charging pads available between rounds; fewer slots than drones
    #: means recharge waves queue (staggered charging).
    charging_slots: int = 1
    #: Wall time one recharge wave takes between rounds; the default 0
    #: models instant battery swaps (and keeps a one-drone fleet's
    #: duration identical to the single-UAV active campaign).
    charge_time_s: float = 0.0
    #: Per-drone battery models; ``None`` gives every drone the default
    #: pack.  When set, must carry exactly ``n_drones`` entries.
    batteries: Optional[Tuple[BatteryConfig, ...]] = None

    def __post_init__(self) -> None:
        if not 1 <= self.n_drones < 26:
            raise ValueError(f"n_drones must be in [1, 26), got {self.n_drones}")
        if self.min_separation_m < 0:
            raise ValueError("min_separation_m must be >= 0")
        if self.charging_slots < 1:
            raise ValueError("charging_slots must be >= 1")
        if self.charge_time_s < 0:
            raise ValueError("charge_time_s must be >= 0")
        if self.batteries is not None:
            packs = tuple(self.batteries)
            if len(packs) != self.n_drones:
                raise ValueError(
                    f"batteries must carry one pack per drone "
                    f"({self.n_drones}), got {len(packs)}"
                )
            # Canonicalize: an all-default tuple is the same fleet as
            # ``None`` and must hash to the same job digest.
            if all(pack == BatteryConfig() for pack in packs):
                packs = None
            object.__setattr__(self, "batteries", packs)

    # ------------------------------------------------------------------
    def battery(self, drone: int) -> BatteryConfig:
        """The battery pack of ``drone`` (default pack when unset)."""
        if self.batteries is None:
            return BatteryConfig()
        return self.batteries[drone]

    def charge_wait_s(self) -> float:
        """Inter-round recharge wall: drones queue through the slots."""
        if self.charge_time_s <= 0:
            return 0.0
        waves = math.ceil(self.n_drones / self.charging_slots)
        return self.charge_time_s * waves

    # -- job-spec adapter (see repro.serve.spec) -----------------------
    def to_job_fields(self) -> Dict[str, object]:
        """The JSON-safe field dict a :class:`~repro.serve.RemJobSpec` carries."""
        batteries = None
        if self.batteries is not None:
            batteries = [
                {name: float(getattr(pack, name)) for name in _BATTERY_FIELDS}
                for pack in self.batteries
            ]
        return {
            "n_drones": self.n_drones,
            "min_separation_m": self.min_separation_m,
            "charging_slots": self.charging_slots,
            "charge_time_s": self.charge_time_s,
            "batteries": batteries,
        }

    @classmethod
    def from_job_fields(cls, params: Dict[str, object]) -> "FleetConfig":
        """Inverse of :meth:`to_job_fields` (unknown keys raise)."""
        known = ("n_drones", "min_separation_m", "charging_slots", "charge_time_s")
        unknown = sorted(set(params) - set(known) - {"batteries"})
        if unknown:
            raise ValueError(
                f"unknown fleet job field(s) {unknown}; "
                f"choose from {sorted(known + ('batteries',))}"
            )
        batteries = params.get("batteries")
        packs: Optional[Tuple[BatteryConfig, ...]] = None
        if batteries is not None:
            packs = tuple(cls._battery_from_fields(entry) for entry in batteries)
        kwargs: Dict[str, object] = {"batteries": packs}
        for name in ("n_drones", "charging_slots"):
            if name in params:
                kwargs[name] = int(params[name])
        for name in ("min_separation_m", "charge_time_s"):
            if name in params:
                kwargs[name] = float(params[name])
        return cls(**kwargs)

    @staticmethod
    def _battery_from_fields(entry: Dict[str, object]) -> BatteryConfig:
        unknown = sorted(set(entry) - set(_BATTERY_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown battery field(s) {unknown}; "
                f"choose from {sorted(_BATTERY_FIELDS)}"
            )
        return BatteryConfig(**{k: float(v) for k, v in entry.items()})


# ----------------------------------------------------------------------
# round planning (pure — the property suite drives these directly)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetRoundPlan:
    """One round's tours: who flies where, and what got bumped."""

    #: Per-drone flown-order waypoints ((n_d, 3); possibly empty).
    tours: Tuple[np.ndarray, ...]
    #: Per-drone indices into the input batch, aligned with ``tours``.
    tour_indices: Tuple[np.ndarray, ...]
    #: Input-batch indices bumped by the separation repair (they return
    #: to the planner pool and stay eligible for later rounds).
    dropped_indices: np.ndarray

    @property
    def waypoints_flown(self) -> int:
        """Waypoints actually scheduled across the fleet this round."""
        return int(sum(len(t) for t in self.tours))


def first_separation_conflict(
    tours: Sequence[np.ndarray], min_separation_m: float
) -> Optional[Tuple[int, int, int]]:
    """First ``(step, drone_a, drone_b)`` violating the separation.

    Tours advance step-synchronized (leg cadence is fleet-wide: every
    drone flies the same ``flight_leg_s``/``scan_window_s`` rhythm);
    a drone whose tour ended has landed and no longer conflicts.
    Returns ``None`` when every simultaneous pair keeps its distance.
    """
    if min_separation_m <= 0:
        return None
    depth = max((len(t) for t in tours), default=0)
    for step in range(depth):
        airborne = [d for d, tour in enumerate(tours) if len(tour) > step]
        for i, a in enumerate(airborne):
            for b in airborne[i + 1 :]:
                gap = float(np.linalg.norm(tours[a][step] - tours[b][step]))
                if gap < min_separation_m:
                    return step, a, b
    return None


def plan_fleet_round(
    points: np.ndarray, fleet: FleetConfig, partition_seed: int = 0
) -> FleetRoundPlan:
    """Split one batch of waypoints into per-drone anti-collision tours.

    The batch is cut with the balanced k-means partition (compact
    regions, near-equal tour lengths, each snake-ordered for the short
    -leg flight constraint), then repaired against
    ``fleet.min_separation_m``: while any simultaneous pair of tour
    positions is too close, the conflicting waypoint of the longer tour
    (ties: the higher drone index) is dropped back to the pool.  The
    repair strictly shrinks tours, so it terminates, and a one-drone
    fleet is untouched (no pairs) — reducing to plain ``snake_order``.
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 3)
    n_drones = fleet.n_drones
    empty = np.zeros((0, 3), dtype=float)
    if len(pts) == 0:
        return FleetRoundPlan(
            tours=tuple(empty.copy() for _ in range(n_drones)),
            tour_indices=tuple(
                np.zeros(0, dtype=int) for _ in range(n_drones)
            ),
            dropped_indices=np.zeros(0, dtype=int),
        )
    index_of = {row.tobytes(): i for i, row in enumerate(pts)}
    if len(index_of) != len(pts):
        raise ValueError("fleet round waypoints must be unique")
    k = min(n_drones, len(pts))
    plan = partition_waypoints(pts, k, strategy="kmeans", seed=partition_seed)
    tours = [np.asarray(part, dtype=float) for part in plan.partitions]
    tours.extend(empty.copy() for _ in range(n_drones - k))
    dropped: List[int] = []
    while True:
        conflict = first_separation_conflict(tours, fleet.min_separation_m)
        if conflict is None:
            break
        step, a, b = conflict
        victim = b if len(tours[b]) >= len(tours[a]) else a
        dropped.append(index_of[tours[victim][step].tobytes()])
        tours[victim] = np.delete(tours[victim], step, axis=0)
    return FleetRoundPlan(
        tours=tuple(tours),
        tour_indices=tuple(
            np.asarray([index_of[row.tobytes()] for row in tour], dtype=int)
            for tour in tours
        ),
        dropped_indices=np.asarray(sorted(dropped), dtype=int),
    )


def _partition_seed(seed: int, round_index: int) -> int:
    """Deterministic per-round k-means seed derived from the campaign seed."""
    return (int(seed) * 1_000_003 + int(round_index)) % (2**32)


# ----------------------------------------------------------------------
# flying one round
# ----------------------------------------------------------------------
def _drone_launch_order(drones: List[int]) -> List[int]:
    """Construction/spawn order of a round's drones inside the kernel.

    The merge contract makes this order invisible in the results; the
    determinism-under-interleaving tests monkeypatch it to prove that.
    """
    return list(drones)


def _fly_fleet_round(
    scenario: DemoScenario,
    config: CampaignConfig,
    active: ActiveSamplingConfig,
    tours: Sequence[np.ndarray],
    round_index: int,
) -> Tuple[Dict[int, SampleLog], List[UavFlightReport], float]:
    """Fly every non-empty tour concurrently in one simulation kernel.

    Each drone gets its own Crazyradio (own address — concurrent
    flight forbids the paper's one-shared-radio scheme), its own
    name-keyed RNG stream fork (``campaign.UAV-X/flight-NN``) and its
    own log.  Returns per-drone logs, flight reports (drone order) and
    the round makespan (the kernel clock when the last drone lands).
    """
    sim = Simulator()
    environment = scenario.environment
    layout = corner_layout(scenario.flight_volume).subset(config.anchor_count)
    logs: Dict[int, SampleLog] = {}
    clients: Dict[int, BaseStationClient] = {}
    processes = {}
    flown = [d for d, tour in enumerate(tours) if len(tour)]
    for d in _drone_launch_order(flown):
        flight_name = f"{drone_name(d)}/flight-{round_index:02d}"
        mission = plan_batch_mission(
            tours[d],
            flight_leg_s=active.flight_leg_s,
            scan_window_s=active.scan_window_s,
            uav_name=flight_name,
            start_position=(0.3 + 0.4 * d, 0.3, 0.0),
        )
        uav_conf, plan = mission.assignments[0]
        if d > 0:
            uav_conf = replace(uav_conf, radio_address=f"radio://0/{80 + d}/2M")
        radio = Crazyradio(environment, config.radio)
        link = CrazyradioLink(
            sim,
            radio,
            uav_tx_queue_capacity=config.firmware.crtp_tx_queue_size,
            address=uav_conf.radio_address,
        )
        uav = Crazyflie(
            sim,
            environment,
            layout,
            link,
            config.firmware,
            scenario.streams.fork(f"campaign.{flight_name}"),
            config=UavConfig(
                name=uav_conf.name,
                start_position=uav_conf.start_position,
                scan_duration_s=config.scan_duration_s,
                localization_mode=config.localization_mode,
                rx_gain_offset_db=uav_conf.rx_gain_offset_db,
            ),
            scan_config=config.scan_config,
        )
        logs[d] = SampleLog()
        clients[d] = BaseStationClient(
            sim, radio, link, uav, uav_conf, plan, logs[d], config.client
        )
        processes[d] = spawn(sim, clients[d].run(), name=f"client.{flight_name}")
    sim.run()
    for d, process in processes.items():
        if not process.finished:
            raise RuntimeError(
                f"fleet round {round_index} stalled while flying "
                f"{drone_name(d)} (simulated t={sim.now:.1f}s)"
            )
    reports = [clients[d].report for d in sorted(clients)]
    return logs, reports, sim.now


def _solo_round_worker(conn, scenario, config, active, tours, drone, round_index):
    """Fork-side helper: fly one drone's tour solo, ship the samples back."""
    try:
        solo = [tour if d == drone else tour[:0] for d, tour in enumerate(tours)]
        logs, reports, now = _fly_fleet_round(
            scenario, config, active, solo, round_index
        )
        conn.send(("ok", (list(logs[drone]), reports[0], now)))
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _fly_fleet_round_processes(
    scenario: DemoScenario,
    config: CampaignConfig,
    active: ActiveSamplingConfig,
    tours: Sequence[np.ndarray],
    round_index: int,
    workers: int,
) -> Tuple[Dict[int, SampleLog], List[UavFlightReport], float]:
    """Fly a round with one OS process (and one kernel) per drone.

    Because drones share no RNG stream and no mutable state, a solo
    kernel per drone produces exactly the samples the interleaved
    kernel would — so this path trades nothing but wall clock.  It
    needs the ``fork`` start method (live scenario objects cross as
    inherited memory, not pickles); elsewhere it falls back to flying
    the solo kernels sequentially in-process, same results.
    """
    flown = [d for d, tour in enumerate(tours) if len(tour)]
    try:
        ctx = get_context("fork")
    except ValueError:  # pragma: no cover - non-posix fallback
        ctx = None
    if ctx is None or len(flown) <= 1:
        logs: Dict[int, SampleLog] = {}
        reports: List[UavFlightReport] = []
        makespan = 0.0
        for d in flown:
            solo = [t if i == d else t[:0] for i, t in enumerate(tours)]
            solo_logs, solo_reports, now = _fly_fleet_round(
                scenario, config, active, solo, round_index
            )
            logs[d] = solo_logs[d]
            reports.extend(solo_reports)
            makespan = max(makespan, now)
        return logs, reports, makespan

    logs = {}
    reports_by_drone: Dict[int, UavFlightReport] = {}
    makespan = 0.0
    for wave_start in range(0, len(flown), max(1, workers)):
        wave = flown[wave_start : wave_start + max(1, workers)]
        handles = []
        for d in wave:
            parent, child = ctx.Pipe()
            process = ctx.Process(
                target=_solo_round_worker,
                args=(child, scenario, config, active, tours, d, round_index),
                daemon=True,
            )
            process.start()
            child.close()
            handles.append((d, parent, process))
        for d, parent, process in handles:
            try:
                kind, payload = parent.recv()
            except (EOFError, OSError):
                kind, payload = "error", f"worker died (exitcode {process.exitcode})"
            finally:
                parent.close()
                process.join()
            if kind != "ok":
                raise RuntimeError(
                    f"fleet worker for {drone_name(d)} failed: {payload}"
                )
            samples, report, now = payload
            log = SampleLog()
            log.extend(samples)
            logs[d] = log
            reports_by_drone[d] = report
            makespan = max(makespan, now)
    reports = [reports_by_drone[d] for d in sorted(reports_by_drone)]
    return logs, reports, makespan


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def merge_fleet_samples(logs: Dict[int, SampleLog]) -> List[Sample]:
    """Deterministic cross-drone merge of one round's sample logs.

    Sorted on ``(timestamp, drone index, intra-drone order)``: per
    -drone sequences are invariant under kernel/OS interleaving (no
    shared RNG, no shared state), so this key makes the combined
    stream a pure function of the job spec.  With one drone it is the
    identity.
    """
    entries = []
    for d in sorted(logs):
        for i, sample in enumerate(logs[d]):
            entries.append((sample.timestamp_s, d, i, sample))
    entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    return [entry[3] for entry in entries]


def _ingest_scans(builder: OnlineRemBuilder, samples: Sequence[Sample]) -> int:
    """Feed the merged stream to the builder, one scan at a time.

    Scans are grouped by ``(uav_name, waypoint_index)`` in order of
    first appearance in the merged stream — for a single drone this is
    exactly the active loop's sorted-by-waypoint ingestion, so the
    builder's holdout RNG draws line up sample for sample.
    """
    order: List[Tuple[str, int]] = []
    groups: Dict[Tuple[str, int], List[Sample]] = {}
    for sample in samples:
        key = (sample.uav_name, sample.waypoint_index)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(sample)
    for key in order:
        group = groups[key]
        records = [
            ScanRecord(
                ssid=s.ssid, rssi_dbm=s.rssi_dbm, mac=s.mac, channel=s.channel
            )
            for s in group
        ]
        builder.add_scan(group[0].position, records)
    return len(order)


# ----------------------------------------------------------------------
# the campaign loop
# ----------------------------------------------------------------------
@dataclass
class FleetRound:
    """One fleet acquisition round: who flew what, and the map after."""

    round_index: int
    tours: Tuple[np.ndarray, ...]
    total_waypoints: int
    #: Waypoints bumped by the separation repair (returned to the pool).
    dropped_waypoints: int
    samples_ingested: int
    holdout_rmse_dbm: Optional[float]
    mean_candidate_uncertainty_db: Optional[float]

    @property
    def waypoints(self) -> np.ndarray:
        """All waypoints flown this round (drone-major order)."""
        flown = [t for t in self.tours if len(t)]
        return np.vstack(flown) if flown else np.zeros((0, 3))


@dataclass
class FleetCampaignResult:
    """Output of one full fleet campaign."""

    scenario: DemoScenario
    config: CampaignConfig
    fleet: FleetConfig
    active: ActiveSamplingConfig
    log: SampleLog
    rounds: List[FleetRound]
    reports: List[UavFlightReport]
    builder: OnlineRemBuilder
    stop_reason: str
    duration_s: float

    @property
    def waypoints_flown(self) -> int:
        """Waypoints scanned across all rounds and drones."""
        return self.rounds[-1].total_waypoints if self.rounds else 0

    @property
    def final_rmse_dbm(self) -> Optional[float]:
        """Holdout RMSE after the last refit."""
        for round_ in reversed(self.rounds):
            if round_.holdout_rmse_dbm is not None:
                return round_.holdout_rmse_dbm
        return None

    def rmse_trajectory(self) -> List[Tuple[int, Optional[float]]]:
        """(waypoints flown, holdout RMSE) per round — the learning curve."""
        return [(r.total_waypoints, r.holdout_rmse_dbm) for r in self.rounds]

    def summary(self) -> Dict[str, float]:
        """Headline numbers of the run."""
        return {
            "n_drones": float(self.fleet.n_drones),
            "waypoints_flown": float(self.waypoints_flown),
            "budget_waypoints": float(self.active.budget_waypoints),
            "total_samples": float(len(self.log)),
            "distinct_macs": float(len(self.log.macs())),
            "rounds": float(len(self.rounds)),
            "dropped_waypoints": float(
                sum(r.dropped_waypoints for r in self.rounds)
            ),
            "final_rmse_dbm": (
                float("nan")
                if self.final_rmse_dbm is None
                else self.final_rmse_dbm
            ),
            "duration_s": self.duration_s,
        }


def run_fleet_campaign(
    scenario: Optional[DemoScenario] = None,
    config: Optional[CampaignConfig] = None,
    fleet: Optional[FleetConfig] = None,
    active: Optional[ActiveSamplingConfig] = None,
    workers: int = 0,
    round_callback: Optional[
        Callable[[FleetRound, OnlineRemBuilder], None]
    ] = None,
) -> FleetCampaignResult:
    """Run the uncertainty-driven campaign with K concurrent drones.

    Parameters
    ----------
    scenario:
        RF world; built from ``config.scenario`` when omitted.
    config:
        Campaign tunables; its ``acquisition`` field is ignored here
        (this *is* the fleet path).
    fleet:
        Fleet shape (drone count, separation, batteries, charging);
        falls back to ``config.fleet``, then to the defaults.
    active:
        Acquisition-loop tunables (the fleet loop shares them with the
        single-drone active path); falls back to ``config.active``.
    workers:
        ``0`` (default) interleaves all drones in one simulation
        kernel.  ``> 0`` flies each drone's tour in its own kernel in
        its own forked OS process, at most ``workers`` at a time —
        byte-identical results (the merge contract), less wall clock.
        An execution knob only: it never enters specs or digests.
    round_callback:
        Called after every round with the fresh :class:`FleetRound`
        and the builder (whose model is current).

    Stopping rules match :func:`.active.run_active_campaign`: target
    RMSE, plateau, waypoint budget, lattice exhaustion — checked in
    that order after every round.
    """
    config = config or CampaignConfig()
    fleet = fleet or (
        config.fleet if config.fleet is not None else FleetConfig()
    )
    active = active or (
        config.active if config.active is not None else ActiveSamplingConfig()
    )
    if config.acquisition != "lattice":
        # Inner flights must take the plain path or they would recurse.
        config = replace(config, acquisition="lattice", fleet=None)
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if scenario is None:
        scenario = build_scenario(config.scenario, seed=config.seed)

    candidates = waypoint_grid(
        scenario.flight_volume,
        nx=active.lattice_nx,
        ny=active.lattice_ny,
        nz=active.lattice_nz,
        margin=active.lattice_margin_m,
    )
    planner = ActiveSamplingPlanner(
        candidates,
        travel_weight_db_per_m=active.travel_weight_db_per_m,
        no_fly=active.no_fly,
    )
    builder = OnlineRemBuilder(
        predictor_factory=active.predictor_factory,
        refit_every_scans=active.refit_every_scans,
        holdout_fraction=active.holdout_fraction,
        seed=active.builder_seed,
    )
    n_drones = fleet.n_drones
    # Per-flight endurance caps: the fleet-wide round quota is bounded
    # by the weakest pack so the balanced partition (tour lengths
    # <= ceil(round/K)) cannot overrun any drone's battery.
    min_quota = min(
        fleet.battery(d).endurance_waypoints(
            flight_leg_s=active.flight_leg_s, scan_window_s=active.scan_window_s
        )
        for d in range(n_drones)
    )

    log = SampleLog()
    rounds: List[FleetRound] = []
    reports: List[UavFlightReport] = []
    duration_s = 0.0
    stop_reason = "budget"
    best_rmse: Optional[float] = None
    stale_rounds = 0
    total = 0

    seed_size = min(
        n_drones * min(active.seed_waypoints, min_quota),
        active.budget_waypoints,
    )
    batch = planner.seed_batch(seed_size)
    plan = plan_fleet_round(
        planner.candidates[batch],
        fleet,
        partition_seed=_partition_seed(config.seed, 0),
    )
    if len(plan.dropped_indices):
        planner.mark_unvisited(batch[plan.dropped_indices])
    round_index = 0
    anchor: Optional[np.ndarray] = None
    while True:
        if workers:
            logs_by_drone, round_reports, makespan = _fly_fleet_round_processes(
                scenario, config, active, plan.tours, round_index, workers
            )
        else:
            logs_by_drone, round_reports, makespan = _fly_fleet_round(
                scenario, config, active, plan.tours, round_index
            )
        merged = merge_fleet_samples(logs_by_drone)
        log.extend(merged)
        _ingest_scans(builder, merged)
        reports.extend(round_reports)
        duration_s += makespan
        snapshot = builder.refit_now()
        rmse = snapshot.holdout_rmse_dbm if snapshot else None
        remaining = planner.remaining_points
        uncertainty: Optional[np.ndarray] = None
        mean_uncertainty: Optional[float] = None
        if builder.ready and len(remaining):
            uncertainty = builder.uncertainty(remaining)
            mean_uncertainty = float(uncertainty.mean())
        total += plan.waypoints_flown
        rounds.append(
            FleetRound(
                round_index=round_index,
                tours=plan.tours,
                total_waypoints=total,
                dropped_waypoints=len(plan.dropped_indices),
                samples_ingested=builder.samples_ingested,
                holdout_rmse_dbm=rmse,
                mean_candidate_uncertainty_db=mean_uncertainty,
            )
        )
        # Travel cost re-anchors on the lead drone's last waypoint —
        # with one drone this is the active loop's ``batch_points[-1]``.
        for tour in plan.tours:
            if len(tour):
                anchor = tour[-1]
                break
        round_index += 1
        if round_callback is not None:
            round_callback(rounds[-1], builder)

        # --- stopping rules (same order as the active loop) ----------
        if (
            active.target_rmse_dbm is not None
            and rmse is not None
            and rmse <= active.target_rmse_dbm
        ):
            stop_reason = "target_rmse"
            break
        if active.patience_rounds > 0 and rmse is not None:
            if best_rmse is None or rmse < best_rmse - active.min_improvement_dbm:
                best_rmse, stale_rounds = rmse, 0
            else:
                stale_rounds += 1
                if stale_rounds >= active.patience_rounds:
                    stop_reason = "plateau"
                    break
        if total >= active.budget_waypoints:
            stop_reason = "budget"
            break
        if planner.exhausted:
            stop_reason = "lattice_exhausted"
            break

        # --- next batch ----------------------------------------------
        duration_s += fleet.charge_wait_s()
        if uncertainty is not None:
            scores = uncertainty
        else:
            scores = np.zeros(len(remaining))
        size = min(
            n_drones * min(active.batch_size, min_quota),
            active.budget_waypoints - total,
        )
        batch = planner.select_batch(scores, anchor, size)
        plan = plan_fleet_round(
            planner.candidates[batch],
            fleet,
            partition_seed=_partition_seed(config.seed, round_index),
        )
        if len(plan.dropped_indices):
            planner.mark_unvisited(batch[plan.dropped_indices])

    return FleetCampaignResult(
        scenario=scenario,
        config=config,
        fleet=fleet,
        active=active,
        log=log,
        rounds=rounds,
        reports=reports,
        builder=builder,
        stop_reason=stop_reason,
        duration_s=duration_s,
    )
