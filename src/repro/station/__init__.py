"""Base-station substrate: mission planning, the control client, storage.

The Python client of §II-C: waypoint lattices split across a UAV fleet,
the per-UAV control loop (take-off → leg → scan with radio down → fetch
→ land), sample logging, the full campaign runner, and the endurance
test protocol.
"""

from .active import (
    ActiveCampaignResult,
    ActiveRound,
    ActiveSamplingConfig,
    ActiveSamplingPlanner,
    run_active_campaign,
)
from .campaign import CampaignConfig, CampaignResult, run_campaign
from .client import BaseStationClient, ClientConfig, UavFlightReport
from .endurance import EnduranceResult, run_endurance_test
from .fleet import (
    FleetCampaignResult,
    FleetConfig,
    FleetRound,
    FleetRoundPlan,
    drone_name,
    first_separation_conflict,
    merge_fleet_samples,
    plan_fleet_round,
    run_fleet_campaign,
)
from .mission import (
    Mission,
    UavMissionConfig,
    WaypointPlan,
    plan_batch_mission,
    plan_demo_mission,
)
from .online import OnlineRemBuilder, OnlineSnapshot
from .scheduler import (
    PartitionPlan,
    PartitionReport,
    evaluate_partition,
    partition_waypoints,
)
from .storage import Sample, SampleLog
from .waypoints import snake_order, split_between_uavs, spread_subset, waypoint_grid

__all__ = [
    "ActiveCampaignResult",
    "ActiveRound",
    "ActiveSamplingConfig",
    "ActiveSamplingPlanner",
    "run_active_campaign",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "BaseStationClient",
    "ClientConfig",
    "UavFlightReport",
    "EnduranceResult",
    "run_endurance_test",
    "FleetCampaignResult",
    "FleetConfig",
    "FleetRound",
    "FleetRoundPlan",
    "drone_name",
    "first_separation_conflict",
    "merge_fleet_samples",
    "plan_fleet_round",
    "run_fleet_campaign",
    "Mission",
    "UavMissionConfig",
    "WaypointPlan",
    "plan_batch_mission",
    "plan_demo_mission",
    "Sample",
    "SampleLog",
    "snake_order",
    "spread_subset",
    "split_between_uavs",
    "waypoint_grid",
    "PartitionPlan",
    "PartitionReport",
    "evaluate_partition",
    "partition_waypoints",
    "OnlineRemBuilder",
    "OnlineSnapshot",
]
