"""Online REM building: the map improves while the fleet still flies.

The paper's pipeline is batch (fly everything, then train).  Since REM
generation is *autonomous*, a natural extension is updating the map
after every scan — letting the operator watch coverage and accuracy
converge live, or even abort a campaign early once the map is good
enough.  :class:`OnlineRemBuilder` consumes location-annotated scans
incrementally and refits its estimator on a configurable cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dataset import REMDataset
from ..core.predictors import KnnRegressor, Predictor, rmse
from ..wifi.beacon import ScanRecord

__all__ = ["OnlineRemBuilder", "OnlineSnapshot"]


@dataclass
class OnlineSnapshot:
    """State of the online map after one update."""

    scans_ingested: int
    samples_ingested: int
    distinct_macs: int
    holdout_rmse_dbm: Optional[float]


class OnlineRemBuilder:
    """Incremental campaign consumer with periodic refits.

    Parameters
    ----------
    predictor_factory:
        Builds the estimator used at each refit (default: the paper's
        best k-NN configuration).
    refit_every_scans:
        How many scans between refits.
    holdout_fraction:
        Fraction of incoming *scans* diverted to a held-out set used to
        score each refit (0 disables scoring).
    """

    def __init__(
        self,
        predictor_factory: Optional[Callable[[], Predictor]] = None,
        refit_every_scans: int = 6,
        holdout_fraction: float = 0.2,
        seed: int = 5,
    ):
        if refit_every_scans < 1:
            raise ValueError("refit_every_scans must be >= 1")
        if not 0.0 <= holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in [0, 1)")
        self._factory = predictor_factory or (
            lambda: KnnRegressor(
                n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0
            )
        )
        self.refit_every_scans = int(refit_every_scans)
        self.holdout_fraction = float(holdout_fraction)
        self._rng = np.random.default_rng(seed)
        self._train_rows: List[Tuple[Tuple[float, float, float], str, int, int]] = []
        self._holdout_rows: List[Tuple[Tuple[float, float, float], str, int, int]] = []
        self.scans_ingested = 0
        self.model: Optional[Predictor] = None
        self._vocabulary: Tuple[str, ...] = ()
        self.history: List[OnlineSnapshot] = []
        self._dataset_cache: Optional[Tuple[int, REMDataset]] = None

    # ------------------------------------------------------------------
    @property
    def samples_ingested(self) -> int:
        """Total samples seen (train + holdout)."""
        return len(self._train_rows) + len(self._holdout_rows)

    @property
    def ready(self) -> bool:
        """True once a model has been fit."""
        return self.model is not None

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        """MACs the current model was trained over (refit order)."""
        return self._vocabulary

    # ------------------------------------------------------------------
    def add_scan(
        self, position: Sequence[float], records: Sequence[ScanRecord]
    ) -> Optional[OnlineSnapshot]:
        """Ingest one scan; returns a snapshot when a refit happened.

        Empty scans (no AP detected — a real occurrence in RF-dark
        corners) still count toward the refit cadence but consume no
        holdout draw, so sample-free scans cannot skew the split.
        """
        pos = tuple(float(v) for v in position)
        rows = [(pos, r.mac, int(r.rssi_dbm), int(r.channel)) for r in records]
        if rows:
            is_holdout = (
                self.holdout_fraction > 0.0
                and self._rng.random() < self.holdout_fraction
            )
            (self._holdout_rows if is_holdout else self._train_rows).extend(rows)
        self.scans_ingested += 1
        if self.scans_ingested % self.refit_every_scans == 0 and self._train_rows:
            return self._refit()
        return None

    def refit_now(self) -> Optional[OnlineSnapshot]:
        """Force a refit outside the cadence (end of a flight batch).

        Returns ``None`` when there is nothing to train on yet.  The
        active-sampling loop calls this after each batch lands so the
        planner always scores candidates against a current model.
        """
        if not self._train_rows:
            return None
        return self._refit()

    # ------------------------------------------------------------------
    def dataset(self) -> REMDataset:
        """Every ingested sample (train + holdout) as one dataset.

        The shipped map should be fit on *all* collected data — the
        holdout only exists to score refits while flying.  Uses its own
        vocabulary over all rows, so holdout-only MACs are included.
        The assembled dataset is memoized on the sample count, so
        per-round consumers (benchmark scoring, exports) pay the
        row-to-array conversion once per ingest state.
        """
        cached = self._dataset_cache
        if cached is not None and cached[0] == self.samples_ingested:
            return cached[1]
        rows = self._train_rows + self._holdout_rows
        vocabulary = tuple(sorted({r[1] for r in rows}))
        index = {mac: i for i, mac in enumerate(vocabulary)}
        positions = np.array([r[0] for r in rows], dtype=float).reshape(-1, 3)
        dataset = REMDataset(
            positions=positions,
            mac_indices=np.array([index[r[1]] for r in rows], dtype=int),
            channels=np.array([max(r[3], 1) for r in rows], dtype=int),
            rssi_dbm=np.array([r[2] for r in rows], dtype=float),
            mac_vocabulary=vocabulary,
        )
        self._dataset_cache = (self.samples_ingested, dataset)
        return dataset

    def _dataset(self, rows) -> REMDataset:
        index = {mac: i for i, mac in enumerate(self._vocabulary)}
        usable = [r for r in rows if r[1] in index]
        positions = np.array([r[0] for r in usable], dtype=float).reshape(-1, 3)
        return REMDataset(
            positions=positions,
            mac_indices=np.array([index[r[1]] for r in usable], dtype=int),
            channels=np.array([max(r[3], 1) for r in usable], dtype=int),
            rssi_dbm=np.array([r[2] for r in usable], dtype=float),
            mac_vocabulary=self._vocabulary,
        )

    def _refit(self) -> OnlineSnapshot:
        self._vocabulary = tuple(sorted({r[1] for r in self._train_rows}))
        train = self._dataset(self._train_rows)
        self.model = self._factory()
        self.model.fit(train)
        score: Optional[float] = None
        holdout = self._dataset(self._holdout_rows) if self._holdout_rows else None
        if holdout is not None and len(holdout) > 0:
            score = rmse(holdout.rssi_dbm, self.model.predict(holdout))
        snapshot = OnlineSnapshot(
            scans_ingested=self.scans_ingested,
            samples_ingested=self.samples_ingested,
            distinct_macs=len(self._vocabulary),
            holdout_rmse_dbm=score,
        )
        self.history.append(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    def uncertainty(self, positions: Sequence[Sequence[float]]) -> np.ndarray:
        """Mean predictive std (dB) across observed MACs per position.

        This is the map-quality field the active planner maximizes over
        candidate waypoints: one :meth:`Predictor.uncertainty_grid` call
        over the full vocabulary, reduced across MACs.
        """
        if self.model is None:
            raise RuntimeError("no model fitted yet (too few scans)")
        points = np.asarray(positions, dtype=float).reshape(-1, 3)
        grid = self.model.uncertainty_grid(
            points, np.arange(len(self._vocabulary))
        )
        return grid.mean(axis=0)

    # ------------------------------------------------------------------
    def predict(self, position: Sequence[float], mac: str) -> float:
        """Current-map RSS prediction for ``mac`` at ``position``."""
        if self.model is None:
            raise RuntimeError("no model fitted yet (too few scans)")
        if mac not in self._vocabulary:
            raise KeyError(f"MAC {mac!r} not yet observed")
        index = self._vocabulary.index(mac)
        query = REMDataset(
            positions=np.asarray([position], dtype=float),
            mac_indices=np.array([index]),
            channels=np.array([1]),
            rssi_dbm=np.zeros(1),
            mac_vocabulary=self._vocabulary,
        )
        return float(self.model.predict(query)[0])
