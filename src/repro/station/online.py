"""Online REM building: the map improves while the fleet still flies.

The paper's pipeline is batch (fly everything, then train).  Since REM
generation is *autonomous*, a natural extension is updating the map
after every scan — letting the operator watch coverage and accuracy
converge live, or even abort a campaign early once the map is good
enough.  :class:`OnlineRemBuilder` consumes location-annotated scans
incrementally and refits its estimator on a configurable cadence.

Cadence refits route through :meth:`repro.core.predictors.base.Predictor.partial_fit`
when the estimator supports it and the MAC vocabulary is unchanged:
only the rows ingested since the previous refit are converted and
folded in, instead of rebuilding the whole growing dataset and fitting
a fresh model every round.  The incremental path is pinned numerically
identical (1e-9) to a from-scratch refit; vocabulary growth falls back
to a full refit automatically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dataset import REMDataset
from ..core.predictors import KnnRegressor, Predictor, rmse
from ..wifi.beacon import ScanRecord

__all__ = ["OnlineRemBuilder", "OnlineSnapshot"]


@dataclass
class OnlineSnapshot:
    """State of the online map after one update."""

    scans_ingested: int
    samples_ingested: int
    distinct_macs: int
    holdout_rmse_dbm: Optional[float]
    #: ``"full"`` (fresh model on all rows) or ``"incremental"``
    #: (delta folded in via ``partial_fit``).
    refit_mode: str = "full"
    #: Wall seconds the model update itself took (holdout scoring
    #: excluded) — the per-round cost the refit benchmarks plot.
    refit_wall_s: float = 0.0


class OnlineRemBuilder:
    """Incremental campaign consumer with periodic refits.

    Parameters
    ----------
    predictor_factory:
        Builds the estimator used at each refit (default: the paper's
        best k-NN configuration).
    refit_every_scans:
        How many scans between refits.
    holdout_fraction:
        Fraction of incoming *scans* diverted to a held-out set used to
        score each refit (0 disables scoring).
    incremental:
        Route cadence refits through ``partial_fit`` whenever the
        estimator supports it and the MAC vocabulary is unchanged
        (numerically identical to a full refit; disable to force the
        legacy from-scratch path, e.g. for benchmarking baselines).
    """

    def __init__(
        self,
        predictor_factory: Optional[Callable[[], Predictor]] = None,
        refit_every_scans: int = 6,
        holdout_fraction: float = 0.2,
        seed: int = 5,
        incremental: bool = True,
    ):
        if refit_every_scans < 1:
            raise ValueError("refit_every_scans must be >= 1")
        if not 0.0 <= holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in [0, 1)")
        self._factory = predictor_factory or (
            lambda: KnnRegressor(
                n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0
            )
        )
        self.refit_every_scans = int(refit_every_scans)
        self.holdout_fraction = float(holdout_fraction)
        self.incremental = bool(incremental)
        self._rng = np.random.default_rng(seed)
        self._train_rows: List[Tuple[Tuple[float, float, float], str, int, int]] = []
        self._holdout_rows: List[Tuple[Tuple[float, float, float], str, int, int]] = []
        self.scans_ingested = 0
        self.model: Optional[Predictor] = None
        self._vocabulary: Tuple[str, ...] = ()
        self._vocabulary_set: FrozenSet[str] = frozenset()
        #: Train rows already folded into the current model; rows past
        #: this index are the pending delta for the next refit.
        self._fitted_rows = 0
        self.refits_full = 0
        self.refits_incremental = 0
        self.history: List[OnlineSnapshot] = []
        self._dataset_cache: Optional[Tuple[int, REMDataset]] = None

    # ------------------------------------------------------------------
    @property
    def samples_ingested(self) -> int:
        """Total samples seen (train + holdout)."""
        return len(self._train_rows) + len(self._holdout_rows)

    @property
    def ready(self) -> bool:
        """True once a model has been fit."""
        return self.model is not None

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        """MACs the current model was trained over (refit order)."""
        return self._vocabulary

    # ------------------------------------------------------------------
    def add_scan(
        self, position: Sequence[float], records: Sequence[ScanRecord]
    ) -> Optional[OnlineSnapshot]:
        """Ingest one scan; returns a snapshot when a refit happened.

        Empty scans (no AP detected — a real occurrence in RF-dark
        corners) still count toward the refit cadence but consume no
        holdout draw, so sample-free scans cannot skew the split.
        """
        pos = tuple(float(v) for v in position)
        rows = [(pos, r.mac, int(r.rssi_dbm), int(r.channel)) for r in records]
        if rows:
            is_holdout = (
                self.holdout_fraction > 0.0
                and self._rng.random() < self.holdout_fraction
            )
            (self._holdout_rows if is_holdout else self._train_rows).extend(rows)
        self.scans_ingested += 1
        if self.scans_ingested % self.refit_every_scans == 0 and self._train_rows:
            return self._refit()
        return None

    def refit_now(self) -> Optional[OnlineSnapshot]:
        """Force a refit outside the cadence (end of a flight batch).

        Returns ``None`` when there is nothing to train on yet.  The
        active-sampling loop calls this after each batch lands so the
        planner always scores candidates against a current model.

        When every early scan happened to draw the holdout split (small
        ``refit_every_scans`` with an unlucky RNG), training would be
        empty while samples exist — and the planner's next
        :meth:`uncertainty` call would raise mid-campaign.  Those rows
        are folded into the training set for the first fit instead;
        holdout scoring resumes with later draws.
        """
        if not self._train_rows and self._holdout_rows:
            self._train_rows, self._holdout_rows = self._holdout_rows, []
            self._dataset_cache = None
        if not self._train_rows:
            return None
        return self._refit()

    # ------------------------------------------------------------------
    def dataset(self) -> REMDataset:
        """Every ingested sample (train + holdout) as one dataset.

        The shipped map should be fit on *all* collected data — the
        holdout only exists to score refits while flying.  Uses its own
        vocabulary over all rows, so holdout-only MACs are included.
        The assembled dataset is memoized on the sample count, so
        per-round consumers (benchmark scoring, exports) pay the
        row-to-array conversion once per ingest state.
        """
        cached = self._dataset_cache
        if cached is not None and cached[0] == self.samples_ingested:
            return cached[1]
        rows = self._train_rows + self._holdout_rows
        vocabulary = tuple(sorted({r[1] for r in rows}))
        index = {mac: i for i, mac in enumerate(vocabulary)}
        positions = np.array([r[0] for r in rows], dtype=float).reshape(-1, 3)
        dataset = REMDataset(
            positions=positions,
            mac_indices=np.array([index[r[1]] for r in rows], dtype=int),
            channels=np.array([max(r[3], 1) for r in rows], dtype=int),
            rssi_dbm=np.array([r[2] for r in rows], dtype=float),
            mac_vocabulary=vocabulary,
        )
        self._dataset_cache = (self.samples_ingested, dataset)
        return dataset

    def _dataset(self, rows) -> REMDataset:
        index = {mac: i for i, mac in enumerate(self._vocabulary)}
        usable = [r for r in rows if r[1] in index]
        positions = np.array([r[0] for r in usable], dtype=float).reshape(-1, 3)
        return REMDataset(
            positions=positions,
            mac_indices=np.array([index[r[1]] for r in usable], dtype=int),
            channels=np.array([max(r[3], 1) for r in usable], dtype=int),
            rssi_dbm=np.array([r[2] for r in usable], dtype=float),
            mac_vocabulary=self._vocabulary,
        )

    def _can_partial_fit(self) -> bool:
        """Whether the pending delta qualifies for the incremental path."""
        if not (
            self.incremental
            and self.model is not None
            and getattr(self.model, "supports_partial_fit", False)
        ):
            return False
        pending = self._train_rows[self._fitted_rows :]
        return all(r[1] in self._vocabulary_set for r in pending)

    def _refit(self) -> OnlineSnapshot:
        t0 = time.perf_counter()
        if self._can_partial_fit():
            pending = self._train_rows[self._fitted_rows :]
            if pending:
                assert self.model is not None
                self.model.partial_fit(self._dataset(pending))
            self.refits_incremental += 1
            mode = "incremental"
        else:
            self._vocabulary = tuple(sorted({r[1] for r in self._train_rows}))
            self._vocabulary_set = frozenset(self._vocabulary)
            train = self._dataset(self._train_rows)
            self.model = self._factory()
            self.model.fit(train)
            self.refits_full += 1
            mode = "full"
        self._fitted_rows = len(self._train_rows)
        refit_wall_s = time.perf_counter() - t0
        score: Optional[float] = None
        holdout = self._dataset(self._holdout_rows) if self._holdout_rows else None
        if holdout is not None and len(holdout) > 0:
            score = rmse(holdout.rssi_dbm, self.model.predict(holdout))
        snapshot = OnlineSnapshot(
            scans_ingested=self.scans_ingested,
            samples_ingested=self.samples_ingested,
            distinct_macs=len(self._vocabulary),
            holdout_rmse_dbm=score,
            refit_mode=mode,
            refit_wall_s=refit_wall_s,
        )
        self.history.append(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    def uncertainty(self, positions: Sequence[Sequence[float]]) -> np.ndarray:
        """Mean predictive std (dB) across observed MACs per position.

        This is the map-quality field the active planner maximizes over
        candidate waypoints: one :meth:`Predictor.uncertainty_grid` call
        over the full vocabulary, reduced across MACs.
        """
        if self.model is None:
            raise RuntimeError("no model fitted yet (too few scans)")
        points = np.asarray(positions, dtype=float).reshape(-1, 3)
        grid = self.model.uncertainty_grid(
            points, np.arange(len(self._vocabulary))
        )
        return grid.mean(axis=0)

    # ------------------------------------------------------------------
    def predict(self, position: Sequence[float], mac: str) -> float:
        """Current-map RSS prediction for ``mac`` at ``position``."""
        if self.model is None:
            raise RuntimeError("no model fitted yet (too few scans)")
        if mac not in self._vocabulary:
            raise KeyError(f"MAC {mac!r} not yet observed")
        index = self._vocabulary.index(mac)
        query = REMDataset(
            positions=np.asarray([position], dtype=float),
            mac_indices=np.array([index]),
            channels=np.array([1]),
            rssi_dbm=np.zeros(1),
            mac_vocabulary=self._vocabulary,
        )
        return float(self.model.predict(query)[0])
