"""Waypoint lattice generation and fleet assignment.

§III-A: "72 locations evenly spread over the volume were identified,
with each UAV responsible for scanning 36 of them."  The lattice here is
6 × 4 × 3 over the flight cuboid (with a safety margin from walls and
ceiling), ordered as a boustrophedon (snake) so consecutive waypoints
are adjacent — the 4-second legs assume short hops — and split between
UAVs along the y axis: UAV A takes the building-facing half (−y), UAV B
the outer half (+y), matching the paper's observation that B flew next
to the thicker wall segment.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..radio.geometry import Cuboid

__all__ = ["waypoint_grid", "snake_order", "split_between_uavs", "spread_subset"]


def waypoint_grid(
    volume: Cuboid,
    nx: int = 6,
    ny: int = 4,
    nz: int = 3,
    margin: float = 0.25,
) -> np.ndarray:
    """An ``nx*ny*nz`` lattice of scan locations inside ``volume``."""
    return volume.grid(nx, ny, nz, margin=margin)


def snake_order(points: np.ndarray) -> np.ndarray:
    """Boustrophedon ordering: sweep x, alternating direction per y row,
    alternating y direction per z layer.

    Keeps consecutive waypoints adjacent so every leg fits the 4 s
    budget.  Points are expected on a lattice but the ordering is
    well-defined for arbitrary point sets.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {pts.shape}")
    z_values = np.unique(pts[:, 2])
    ordered: List[np.ndarray] = []
    row_counter = 0
    for zi, z in enumerate(z_values):
        layer = pts[np.isclose(pts[:, 2], z)]
        y_values = np.unique(layer[:, 1])
        if zi % 2 == 1:
            y_values = y_values[::-1]
        for y in y_values:
            row = layer[np.isclose(layer[:, 1], y)]
            row = row[np.argsort(row[:, 0])]
            # Direction alternates with the *global* row counter so the
            # sweep continues seamlessly across layer transitions — a
            # parity restart per layer would make the first leg of each
            # new layer span the whole room and overrun the 4 s budget.
            if row_counter % 2 == 1:
                row = row[::-1]
            row_counter += 1
            ordered.append(row)
    return np.vstack(ordered)


def spread_subset(points: np.ndarray, count: int) -> np.ndarray:
    """Indices of ``count`` points spread over the set (farthest-point).

    Greedy k-center seeding for the active campaign's exploratory first
    batch: start at the point closest to the centroid, then repeatedly
    add the candidate farthest from everything selected so far.  Fully
    deterministic — no RNG — so campaigns are reproducible.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {pts.shape}")
    n = len(pts)
    if not 1 <= count <= n:
        raise ValueError(f"count must be in [1, {n}], got {count}")
    centroid = pts.mean(axis=0)
    selected = [int(np.argmin(np.linalg.norm(pts - centroid, axis=1)))]
    min_dist = np.linalg.norm(pts - pts[selected[0]], axis=1)
    while len(selected) < count:
        nxt = int(np.argmax(min_dist))
        selected.append(nxt)
        min_dist = np.minimum(min_dist, np.linalg.norm(pts - pts[nxt], axis=1))
    return np.asarray(selected, dtype=int)


def split_between_uavs(
    points: np.ndarray, n_uavs: int = 2, axis: int = 1
) -> List[np.ndarray]:
    """Partition waypoints between UAVs along ``axis``.

    The first partition gets the lowest-coordinate slice (toward the
    building center for the default y axis), each snake-ordered.
    """
    if n_uavs < 1:
        raise ValueError("need at least one UAV")
    pts = np.asarray(points, dtype=float)
    order = np.argsort(pts[:, axis], kind="stable")
    chunks = np.array_split(order, n_uavs)
    if any(len(c) == 0 for c in chunks):
        raise ValueError(f"cannot split {len(pts)} waypoints across {n_uavs} UAVs")
    return [snake_order(pts[np.sort(chunk)]) for chunk in chunks]
