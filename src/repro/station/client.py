"""The base-station Python client (§II-C, Fig. 4).

One client process drives one UAV through its waypoint plan:

1. connect (radio on) and command take-off;
2. per waypoint: stream GOTO setpoints for the 4 s leg, command a scan,
   **shut the Crazyradio down** for the scan window, restart it, drain
   the buffered result packets, and store the location-annotated
   samples;
3. land the UAV and disconnect.

The radio-off window is the paper's central self-interference
mitigation; with stock firmware the UAV does not survive it (watchdog),
which the integration tests and the ablation bench exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..link.crazyradio import Crazyradio, CrazyradioLink
from ..sim.kernel import Simulator
from ..sim.process import Timeout
from ..uav import app_protocol as proto
from ..uav.crazyflie import Crazyflie, FlightState
from .mission import UavMissionConfig, WaypointPlan
from .storage import Sample, SampleLog

__all__ = ["ClientConfig", "UavFlightReport", "BaseStationClient"]


@dataclass(frozen=True)
class ClientConfig:
    """Timing knobs of the client loop."""

    takeoff_height_m: float = 0.5
    takeoff_time_s: float = 2.0
    setpoint_period_s: float = 0.2
    #: Delay between the scan command and the radio shutdown (§II-C:
    #: "the radio is shut down right before the scan starts").
    scan_command_margin_s: float = 0.15
    #: Extra wait after the nominal scan window before restarting.
    scan_fetch_margin_s: float = 0.2
    result_poll_period_s: float = 0.05
    result_poll_timeout_s: float = 2.0
    #: Mission aborts when the battery falls below this fraction.
    battery_abort_fraction: float = 0.05
    #: Ablation switch: keep the Crazyradio transmitting during scans
    #: (the paper's design turns it off; leaving it on demonstrates the
    #: self-interference cost end-to-end).
    disable_radio_shutdown: bool = False


@dataclass
class UavFlightReport:
    """Outcome of one UAV's leg of the campaign."""

    uav_name: str
    waypoints_visited: int = 0
    waypoints_planned: int = 0
    samples_collected: int = 0
    active_time_s: float = 0.0
    aborted: bool = False
    abort_reason: str = ""
    final_state: Optional[FlightState] = None
    result_packets_lost: int = 0


class BaseStationClient:
    """Drives one UAV through a waypoint plan over the radio link."""

    def __init__(
        self,
        sim: Simulator,
        radio: Crazyradio,
        link: CrazyradioLink,
        uav: Crazyflie,
        mission_config: UavMissionConfig,
        plan: WaypointPlan,
        log: SampleLog,
        config: Optional[ClientConfig] = None,
    ):
        self.sim = sim
        self.radio = radio
        self.link = link
        self.uav = uav
        self.mission_config = mission_config
        self.plan = plan
        self.log = log
        self.config = config or ClientConfig()
        self.report = UavFlightReport(
            uav_name=mission_config.name, waypoints_planned=len(plan)
        )

    # ------------------------------------------------------------------
    def run(self):
        """Generator process: fly the full plan (spawn on the simulator)."""
        cfg = self.config
        self.radio.turn_on()
        self.link.station_send(proto.encode(proto.Takeoff(cfg.takeoff_height_m)))
        yield Timeout(cfg.takeoff_time_s)

        for index, waypoint in enumerate(self.plan.waypoints):
            if self._should_abort():
                break
            # --- 4 s flight leg with a steady setpoint stream ---------
            yield from self._fly_leg(waypoint)
            if self._should_abort():
                break
            # --- scan with the radio down ------------------------------
            got_end = yield from self._scan_and_fetch(index, waypoint)
            self.report.waypoints_visited += 1
            if not got_end:
                # Results lost (queue overflow or UAV died mid-scan).
                self.report.result_packets_lost += 1

        self.link.station_send(proto.encode(proto.Land()))
        yield Timeout(self.uav.config.landing_time_s + 0.2)
        self.radio.turn_off()
        self.report.active_time_s = self.uav.active_time_s
        self.report.final_state = self.uav.state
        return self.report

    # ------------------------------------------------------------------
    def _fly_leg(self, waypoint):
        cfg = self.config
        elapsed = 0.0
        while elapsed < self.plan.flight_leg_s:
            self.link.station_send(proto.encode(proto.Goto(*waypoint)))
            yield Timeout(cfg.setpoint_period_s)
            elapsed += cfg.setpoint_period_s

    def _scan_and_fetch(self, waypoint_index: int, waypoint):
        cfg = self.config
        self.link.station_send(proto.encode(proto.StartScan()))
        yield Timeout(cfg.scan_command_margin_s)
        if not cfg.disable_radio_shutdown:
            self.radio.turn_off()
        scan_time = (
            self.uav.config.scan_startup_s
            + self.uav.config.scan_duration_s
            + cfg.scan_fetch_margin_s
        )
        yield Timeout(
            max(scan_time, self.plan.scan_window_s - cfg.scan_command_margin_s)
        )
        self.radio.turn_on()

        records: List[proto.ScanRecordMsg] = []
        end: Optional[proto.ScanEnd] = None
        waited = 0.0
        while waited < cfg.result_poll_timeout_s and end is None:
            for packet in self.link.station_poll():
                message = proto.decode(packet)
                if isinstance(message, proto.ScanRecordMsg):
                    records.append(message)
                elif isinstance(message, proto.ScanEnd):
                    end = message
            if end is None:
                yield Timeout(cfg.result_poll_period_s)
                waited += cfg.result_poll_period_s

        if end is None:
            return False
        annotated = end.position
        truth = tuple(float(v) for v in self.uav.position)
        for record in records:
            self.log.append(
                Sample(
                    uav_name=self.mission_config.name,
                    waypoint_index=waypoint_index,
                    timestamp_s=self.sim.now,
                    x=annotated[0],
                    y=annotated[1],
                    z=annotated[2],
                    true_x=truth[0],
                    true_y=truth[1],
                    true_z=truth[2],
                    ssid=record.ssid,
                    rssi_dbm=record.rssi_dbm,
                    mac=record.mac,
                    channel=record.channel,
                )
            )
        self.report.samples_collected += len(records)
        if end.record_count != len(records):
            self.report.result_packets_lost += end.record_count - len(records)
        if end.battery_fraction < cfg.battery_abort_fraction:
            self.report.aborted = True
            self.report.abort_reason = "battery low"
        return True

    # ------------------------------------------------------------------
    def _should_abort(self) -> bool:
        if self.uav.state is FlightState.CRASHED:
            self.report.aborted = True
            self.report.abort_reason = self.uav.crash_reason or "crashed"
            return True
        if self.uav.battery.erratic:
            self.report.aborted = True
            self.report.abort_reason = "battery erratic"
            return True
        return self.report.aborted
