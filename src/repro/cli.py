"""Command-line interface: ``python -m repro <command>``.

Subcommands map one-to-one onto the reproduction's top-level flows:

* ``campaign``     — fly the 72-waypoint demo campaign, print §III-A
  statistics, optionally archive samples to CSV;
* ``figures``      — regenerate the paper's figures as ASCII;
* ``endurance``    — run the §III-A endurance protocol;
* ``localization`` — the §II-B anchor/mode accuracy table;
* ``density``      — the future-work REM density curve;
* ``rem``          — generate a REM and export it (JSON or ``.npz``,
  dispatched on the output suffix);
* ``scenarios``    — list registered/generated worlds, describe one,
  or generate a procedural building from a JSON spec (spec in/out);
* ``jobs``         — run a JSON job spec through the artifact store
  (cache-hit aware), sweep a job-set grid over worker processes
  (resumable against the store), or list the stored artifacts;
* ``report``       — aggregate store sidecars into a tidy CSV plus a
  markdown report (no re-simulation);
* ``serve``        — start the JSON/HTTP REM-serving front end over an
  artifact store.

Machine-readable output is uniform: every verb that honors ``--json``
prints one ``{"ok": <bool>, "result": <payload>}`` object on stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Small UAVs-supported Autonomous Generation of "
            "Fine-grained 3D Indoor Radio Environmental Maps' (ICDCS 2022)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=63, help="master scenario seed (default 63)"
    )
    parser.add_argument(
        "--scenario",
        default="condo",
        help=(
            "registered RF scenario to run in (e.g. condo, office, "
            "warehouse; default condo)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    campaign = commands.add_parser("campaign", help="fly the demo campaign")
    campaign.add_argument("--output", help="CSV path to archive the samples")
    campaign.add_argument(
        "--active",
        action="store_true",
        help=(
            "uncertainty-driven acquisition instead of the fixed lattice: "
            "fly a seed batch, refit online, fly where the map is least "
            "certain, repeat until a stopping rule fires"
        ),
    )
    campaign.add_argument(
        "--budget",
        type=int,
        default=72,
        help="active sampling: max waypoints to fly (default 72)",
    )
    campaign.add_argument(
        "--target-rmse",
        type=float,
        default=None,
        help=(
            "active sampling: stop once the holdout RMSE (dB) drops to "
            "this level (default: fly the whole budget)"
        ),
    )
    campaign.add_argument(
        "--batch",
        type=int,
        default=6,
        help="active sampling: waypoints acquired per round (default 6)",
    )
    campaign.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="K",
        help=(
            "fly K drones concurrently (fleet acquisition: the active "
            "planner's batches are partitioned spatially across the "
            "fleet, flown at once, and merged deterministically; "
            "0 = off)"
        ),
    )
    campaign.add_argument(
        "--separation",
        type=float,
        default=0.5,
        help=(
            "fleet acquisition: pairwise anti-collision distance in "
            "meters enforced at batch-planning time (default 0.5)"
        ),
    )

    figures = commands.add_parser("figures", help="regenerate paper figures")
    figures.add_argument(
        "--figure",
        choices=("5", "6", "7", "8", "all"),
        default="all",
        help="which figure to regenerate",
    )

    commands.add_parser("endurance", help="run the §III-A endurance protocol")
    commands.add_parser("localization", help="anchor/mode accuracy table")

    density = commands.add_parser("density", help="REM density study")
    density.add_argument(
        "--counts",
        default="3,6,12,24,40,54",
        help="comma-separated training-location counts",
    )

    rem = commands.add_parser("rem", help="generate and export a REM")
    rem.add_argument("--resolution", type=float, default=0.25, help="lattice step (m)")
    rem.add_argument(
        "--output",
        "--out",
        default="rem.json",
        help=(
            "output path; a .npz suffix selects the compact binary "
            "format, anything else gets JSON"
        ),
    )
    rem.add_argument(
        "--tune", action="store_true", help="grid-search hyper-parameters (slower)"
    )

    scenarios = commands.add_parser(
        "scenarios", help="list/describe/generate RF scenarios"
    )
    sub = scenarios.add_subparsers(dest="scenarios_command", required=True)

    listing = sub.add_parser(
        "list", help="registered worlds plus the generator's templates"
    )
    listing.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    describe = sub.add_parser(
        "describe",
        help=(
            "describe a world: a registry name, a generated:... name, "
            "or a JSON spec file ('-' reads stdin)"
        ),
    )
    describe.add_argument("target", help="scenario name or spec path")
    describe.add_argument(
        "--json", action="store_true", help="emit the metadata record as JSON"
    )

    generate = sub.add_parser(
        "generate",
        help=(
            "build a procedural building and emit its canonical JSON "
            "spec (stdout or --out); build summary goes to stderr"
        ),
    )
    generate.add_argument(
        "--template",
        default=None,
        help=(
            "floor-plan template (room-grid, corridor-spine, open-plan; "
            "default room-grid; conflicts with --spec)"
        ),
    )
    generate.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a BuildingSpec field (repeatable), e.g. --set floors=5",
    )
    generate.add_argument(
        "--spec",
        help="read the full spec from this JSON file instead ('-' = stdin)",
    )
    generate.add_argument("--out", help="write the canonical spec JSON here")
    generate.add_argument(
        "--json",
        action="store_true",
        help="emit {ok, result} (spec + build summary) instead of raw spec JSON",
    )

    jobs = commands.add_parser(
        "jobs", help="run job specs through the artifact store"
    )
    jsub = jobs.add_subparsers(dest="jobs_command", required=True)

    jrun = jsub.add_parser(
        "run",
        help=(
            "run a REM job (build once, cache forever): spec JSON from "
            "a file/stdin plus --set overrides, artifact into --store"
        ),
    )
    jrun.add_argument(
        "spec",
        nargs="?",
        help="job-spec JSON path ('-' reads stdin; omit to use defaults)",
    )
    jrun.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help=(
            "override a spec field (repeatable), e.g. --set seed=7 "
            "--set acquisition=active; values parse as JSON when possible"
        ),
    )
    jrun.add_argument(
        "--store", default="artifacts", help="artifact store directory"
    )
    jrun.add_argument(
        "--store-format",
        choices=("npz", "npy"),
        default="npz",
        help=(
            "artifact storage layout: npz (compressed archive) or npy "
            "(uncompressed .npy per tensor, mmap-able for multi-worker "
            "serving; default npz)"
        ),
    )
    jrun.add_argument(
        "--json", action="store_true", help="emit the artifact record as JSON"
    )

    jlist = jsub.add_parser("list", help="list stored artifacts")
    jlist.add_argument(
        "--store", default="artifacts", help="artifact store directory"
    )
    jlist.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    sweep = jsub.add_parser(
        "sweep",
        help=(
            "fan a job-set grid (scenarios x seeds x predictors x "
            "acquisitions x resolutions) out over worker processes; "
            "resumable: finished digests are cache hits on re-run"
        ),
    )
    sweep.add_argument(
        "spec",
        nargs="?",
        help="job-set JSON path ('-' reads stdin; omit to use defaults)",
    )
    sweep.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help=(
            "override a job-set field (repeatable), e.g. "
            "--set seeds=[1,2,3] --set predictors='[\"knn\",\"idw\"]'; "
            "values parse as JSON when possible"
        ),
    )
    sweep.add_argument(
        "--store", default="artifacts", help="artifact store directory"
    )
    sweep.add_argument(
        "--store-format",
        choices=("npz", "npy"),
        default="npz",
        help="artifact storage layout (see 'jobs run'; default npz)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes (default: os.cpu_count(), one per core "
            "of this host; 0 = run inline in this process, serial)"
        ),
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget (worker killed past it)",
    )
    sweep.add_argument(
        "--max-failures",
        type=int,
        default=None,
        help=(
            "circuit breaker: stop dispatching once more than this "
            "many jobs failed (default: never)"
        ),
    )
    sweep.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="multiprocessing start method (default spawn)",
    )
    sweep.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    report = commands.add_parser(
        "report",
        help=(
            "aggregate artifact-store sidecars (spec + provenance) into "
            "a tidy CSV and a markdown report — no re-simulation"
        ),
    )
    report.add_argument(
        "--store", default="artifacts", help="artifact store directory"
    )
    report.add_argument("--csv", help="write the tidy per-artifact rows here")
    report.add_argument("--out", help="write the markdown report here")
    report.add_argument(
        "--by",
        default="predictor",
        help="column to group the report by (default predictor)",
    )
    report.add_argument(
        "--value",
        default="test_rmse_dbm",
        help="metric column to aggregate (default test_rmse_dbm)",
    )
    report.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    serve = commands.add_parser(
        "serve", help="serve stored REMs over JSON/HTTP"
    )
    serve.add_argument(
        "--store", default="artifacts", help="artifact store directory"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8000, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--capacity",
        type=int,
        default=4,
        help="loaded-artifact LRU capacity (default 4)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "pre-forked worker processes (default 1 = single-process; "
            "N > 1 serves one SO_REUSEPORT address from N processes "
            "with mmap-shared artifacts)"
        ),
    )
    serve.add_argument(
        "--no-reuse-port",
        action="store_true",
        help=(
            "multi-worker only: share one inherited listener socket "
            "instead of per-worker SO_REUSEPORT sockets"
        ),
    )
    return parser


# ----------------------------------------------------------------------
def _print_json(result, ok: bool = True) -> None:
    """Emit the uniform ``--json`` envelope: ``{"ok": ..., "result": ...}``."""
    print(json.dumps({"ok": ok, "result": result}, indent=2, sort_keys=True))


def _cmd_campaign(args) -> int:
    from .analysis import campaign_stats
    from .radio import build_scenario
    from .station import run_campaign

    if args.fleet:
        return _cmd_campaign_fleet(args)
    if args.active:
        return _cmd_campaign_active(args)
    scenario = build_scenario(args.scenario, seed=args.seed)
    print(f"flying the {args.scenario!r} campaign (seed {args.seed})...")
    result = run_campaign(scenario=scenario)
    stats = campaign_stats(result)
    print(f"total samples : {stats.total_samples} (paper: 2696)")
    for uav, count in sorted(stats.samples_by_uav.items()):
        print(f"  {uav}: {count}")
    print(f"distinct MACs : {stats.distinct_macs} (paper: 73)")
    print(f"distinct SSIDs: {stats.distinct_ssids} (paper: 49)")
    print(f"mean RSS      : {stats.mean_rss_dbm:.1f} dBm (paper: ≈ -73)")
    if args.output:
        result.log.save_csv(args.output)
        print(f"samples archived to {args.output}")
    return 0


def _cmd_campaign_active(args) -> int:
    from .analysis import render_active_trajectory
    from .radio import build_scenario
    from .station import ActiveSamplingConfig, run_active_campaign

    if args.budget < 1:
        print("--budget must be >= 1", file=sys.stderr)
        return 2
    if args.batch < 1:
        print("--batch must be >= 1", file=sys.stderr)
        return 2
    scenario = build_scenario(args.scenario, seed=args.seed)
    active = ActiveSamplingConfig(
        seed_waypoints=min(12, args.budget),
        batch_size=args.batch,
        budget_waypoints=args.budget,
        target_rmse_dbm=args.target_rmse,
    )
    print(
        f"flying the {args.scenario!r} campaign with active sampling "
        f"(seed {args.seed}, budget {args.budget} waypoints"
        + (
            f", target RMSE {args.target_rmse:.2f} dB)..."
            if args.target_rmse is not None
            else ")..."
        )
    )
    result = run_active_campaign(scenario=scenario, active=active)
    print(render_active_trajectory(result.rounds))
    summary = result.summary()
    print(
        f"stopped: {result.stop_reason} after "
        f"{result.waypoints_flown}/{args.budget} waypoints, "
        f"{summary['total_samples']:.0f} samples, "
        f"{summary['distinct_macs']:.0f} MACs"
    )
    if result.final_rmse_dbm is not None:
        print(f"final holdout RMSE: {result.final_rmse_dbm:.3f} dB")
    if args.output:
        result.log.save_csv(args.output)
        print(f"samples archived to {args.output}")
    return 0


def _cmd_campaign_fleet(args) -> int:
    from .analysis import render_active_trajectory
    from .radio import build_scenario
    from .station import ActiveSamplingConfig, FleetConfig, run_fleet_campaign

    if args.fleet < 1:
        print("--fleet must be >= 1", file=sys.stderr)
        return 2
    if args.budget < 1:
        print("--budget must be >= 1", file=sys.stderr)
        return 2
    if args.batch < 1:
        print("--batch must be >= 1", file=sys.stderr)
        return 2
    scenario = build_scenario(args.scenario, seed=args.seed)
    active = ActiveSamplingConfig(
        seed_waypoints=min(12, args.budget),
        batch_size=args.batch,
        budget_waypoints=args.budget,
        target_rmse_dbm=args.target_rmse,
    )
    fleet = FleetConfig(n_drones=args.fleet, min_separation_m=args.separation)
    print(
        f"flying the {args.scenario!r} campaign with a {args.fleet}-drone "
        f"fleet (seed {args.seed}, budget {args.budget} waypoints, "
        f"separation {args.separation:g} m)..."
    )
    result = run_fleet_campaign(scenario=scenario, fleet=fleet, active=active)
    print(render_active_trajectory(result.rounds))
    for round_ in result.rounds:
        tours = " + ".join(str(len(t)) for t in round_.tours)
        dropped = (
            f", {round_.dropped_waypoints} bumped (separation)"
            if round_.dropped_waypoints
            else ""
        )
        print(f"round {round_.round_index}: tours {tours}{dropped}")
    summary = result.summary()
    print(
        f"stopped: {result.stop_reason} after "
        f"{result.waypoints_flown}/{args.budget} waypoints across "
        f"{args.fleet} drone(s), {summary['total_samples']:.0f} samples, "
        f"{summary['distinct_macs']:.0f} MACs"
    )
    print(f"fleet makespan: {result.duration_s:.1f} s simulated")
    if result.final_rmse_dbm is not None:
        print(f"final holdout RMSE: {result.final_rmse_dbm:.3f} dB")
    if args.output:
        result.log.save_csv(args.output)
        print(f"samples archived to {args.output}")
    return 0


def _cmd_figures(args) -> int:
    from .analysis import (
        figure5,
        figure6,
        figure7,
        figure8,
        render_figure5,
        render_figure7,
        render_figure8,
    )
    from .radio import build_scenario
    from .station import run_campaign

    wanted = args.figure
    scenario = build_scenario(args.scenario, seed=args.seed)
    if wanted in ("5", "all"):
        print("=== Figure 5 ===")
        print(render_figure5(figure5(scenario=scenario)))
        print()
    if wanted in ("6", "7", "8", "all"):
        campaign = run_campaign(scenario=scenario)
        if wanted in ("6", "all"):
            print("=== Figure 6 ===")
            fig6 = figure6(campaign)
            for uav, rows in fig6.per_location.items():
                counts = [c for _, c, _ in sorted(rows)]
                print(f"{uav} (total {sum(counts)}):")
                print("  " + " ".join(f"{c:3d}" for c in counts))
            print()
        if wanted in ("7", "all"):
            print("=== Figure 7 ===")
            print(render_figure7(figure7(campaign)))
            print()
        if wanted in ("8", "all"):
            print("=== Figure 8 ===")
            print(render_figure8(figure8(campaign.log)))
    return 0


def _cmd_endurance(args) -> int:
    from .station import run_endurance_test

    print(f"running the endurance protocol (seed {args.seed})...")
    result = run_endurance_test(seed=args.seed)
    print(
        f"{result.scans_completed} scans in {result.minutes_seconds} "
        f"(paper: 36 scans in 6 min 12 s)"
    )
    print(f"battery at {result.battery_remaining_fraction:.1%} when erratic")
    return 0


def _cmd_localization(args) -> int:
    import numpy as np

    from .analysis import table
    from .radio import build_scenario
    from .uwb import LocalizationMode, corner_layout, evaluate_hovering_accuracy

    scenario = build_scenario(args.scenario, seed=args.seed)
    layout = corner_layout(scenario.flight_volume)
    rng = np.random.default_rng(args.seed)
    rows = []
    for mode in (LocalizationMode.TWR, LocalizationMode.TDOA):
        for count in (4, 6, 8):
            result = evaluate_hovering_accuracy(
                layout.subset(count), mode, (1.87, 1.6, 1.0), rng
            )
            rows.append([mode, count, f"{result.mean_error_m * 100:.1f}"])
    print(table(["mode", "anchors", "mean error (cm)"], rows))
    print("(paper §II-B: ~9 cm with 6 anchors)")
    return 0


def _cmd_density(args) -> int:
    from .core import density_sweep
    from .radio import build_scenario
    from .station import run_campaign

    counts = [int(c) for c in args.counts.split(",")]
    scenario = build_scenario(args.scenario, seed=args.seed)
    print("flying the campaign for the density study...")
    campaign = run_campaign(scenario=scenario)
    result = density_sweep(campaign.log, location_counts=counts)
    for point in sorted(result.points, key=lambda p: p.n_locations):
        print(
            f"{point.n_locations:3d} locations "
            f"({point.n_train_samples:4d} samples) -> {point.rmse_dbm:.3f} dBm"
        )
    print(f"density knee (0.2 dB): {result.knee_locations():d} locations")
    return 0


def _cmd_rem(args) -> int:
    from .serve import RemJobSpec, run_job

    spec = RemJobSpec(
        scenario=args.scenario,
        seed=args.seed,
        tune=args.tune,
        resolution_m=args.resolution,
        with_uncertainty=False,
    )
    print(
        f"generating the {args.scenario!r} REM "
        f"(seed {args.seed}, {args.resolution} m lattice)..."
    )
    artifact = run_job(spec)
    provenance = artifact.provenance
    print(
        f"{provenance['samples']:.0f} samples, test RMSE "
        f"{provenance['test_rmse_dbm']:.2f} dBm, "
        f"{provenance['n_macs']:.0f} APs mapped"
    )
    if args.output.endswith(".npz"):
        artifact.rem.save_npz(args.output)
    else:
        with open(args.output, "w") as handle:
            json.dump(artifact.rem.to_dict(), handle)
    print(f"REM exported to {args.output}")
    return 0


def _load_job_spec(args):
    """Resolve the ``jobs run`` spec: JSON file/stdin plus --set overrides."""
    from .serve import RemJobSpec

    params = {}
    if args.spec:
        text = (
            sys.stdin.read()
            if args.spec == "-"
            else open(args.spec, encoding="utf-8").read()
        )
        params = json.loads(text)
        if not isinstance(params, dict):
            raise SystemExit("a job spec must be a JSON object")
    for item in args.overrides:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--set expects FIELD=VALUE, got {item!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return RemJobSpec.from_dict(params)


def _load_jobset_spec(args):
    """Resolve the ``jobs sweep`` grid: JSON file/stdin plus --set overrides."""
    from .serve import JobSetSpec

    params = {}
    if args.spec:
        text = (
            sys.stdin.read()
            if args.spec == "-"
            else open(args.spec, encoding="utf-8").read()
        )
        params = json.loads(text)
        if not isinstance(params, dict):
            raise SystemExit("a job-set spec must be a JSON object")
    for item in args.overrides:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--set expects FIELD=VALUE, got {item!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return JobSetSpec.from_dict(params)


def _cmd_jobs_sweep(args, store) -> int:
    from .serve import JobSetRunner

    try:
        jobset = _load_jobset_spec(args)
    except (ValueError, OSError) as exc:
        print(f"bad job-set spec: {exc}", file=sys.stderr)
        return 2

    def show_progress(tick) -> None:
        eta = f", eta {tick.eta_s:.0f}s" if tick.eta_s is not None else ""
        counts = f"{tick.built} built/{tick.cached} cached"
        if tick.failed:
            counts += f"/{tick.failed} failed"
        print(
            f"[{tick.done}/{tick.total}] {tick.status:<6} "
            f"{tick.digest[:12]} ({counts}, {tick.elapsed_s:.1f}s{eta})"
        )

    # Resolve the worker default here so what runs is what is reported:
    # one process per core of this host (never a fixed count that could
    # oversubscribe a smaller machine).
    workers = args.workers
    if workers is None:
        workers = os.cpu_count() or 1
    runner = JobSetRunner(
        store,
        workers=workers,
        timeout_s=args.timeout,
        max_failures=args.max_failures,
        progress=None if args.json else show_progress,
        start_method=args.start_method,
        storage_format=args.store_format,
    )
    try:
        result = runner.run(jobset)
    except KeyboardInterrupt:
        print(
            f"\ninterrupted — finished jobs are stored in {args.store}/; "
            "re-run the same sweep to resume",
            file=sys.stderr,
        )
        return 130
    summary = result.summary()
    ok = result.failed == 0 and not result.aborted
    if args.json:
        payload = dict(summary)
        payload["records"] = [
            {
                "digest": r.digest,
                "status": r.status,
                "wall_s": r.wall_s,
                "error": r.error,
            }
            for r in result.records
        ]
        _print_json(payload, ok=ok)
    elif (
        summary["cached"] == summary["total"]
        and summary["total"] > 0
        and summary["built"] == summary["failed"] == summary["skipped"] == 0
    ):
        # Every cell was a resume cache hit: no rates or ETAs to
        # report, just say so and exit cleanly.
        print(
            f"sweep {summary['jobset_digest'][:12]}: cached "
            f"{summary['cached']}/{summary['total']} in "
            f"{summary['elapsed_s']:.1f}s (all jobs already in the store)"
        )
    else:
        print(
            f"sweep {summary['jobset_digest'][:12]}: "
            f"{summary['built']} built, {summary['cached']} cached, "
            f"{summary['failed']} failed, {summary['skipped']} skipped "
            f"in {summary['elapsed_s']:.1f}s"
        )
        if result.failed:
            print(
                f"failures recorded in {args.store}/failed.json",
                file=sys.stderr,
            )
        if result.aborted:
            print("sweep aborted (circuit breaker)", file=sys.stderr)
    return 0 if ok else 1


def _cmd_jobs(args) -> int:
    from .serve import ArtifactStore, run_job

    store = ArtifactStore(
        args.store, default_format=getattr(args, "store_format", "npz")
    )
    if args.jobs_command == "sweep":
        return _cmd_jobs_sweep(args, store)
    if args.jobs_command == "run":
        try:
            spec = _load_job_spec(args)
        except (ValueError, OSError) as exc:
            print(f"bad job spec: {exc}", file=sys.stderr)
            return 2
        artifact = run_job(spec, store)
        if args.json:
            record = artifact.record()
            record["cache_hit"] = artifact.cache_hit
            _print_json(record)
            return 0
        state = "cache hit" if artifact.cache_hit else "built"
        provenance = artifact.provenance
        print(f"job {artifact.digest[:12]} ({state})")
        print(
            f"  scenario {spec.scenario!r} seed {spec.seed} "
            f"({spec.acquisition}, {spec.predictor})"
        )
        print(
            f"  {provenance.get('samples', 0)} samples, test RMSE "
            f"{provenance.get('test_rmse_dbm', float('nan')):.2f} dBm, "
            f"{provenance.get('n_macs', 0)} APs mapped"
        )
        print(f"  artifact stored under {args.store}/")
        return 0
    # list
    records = store.list()
    if args.json:
        _print_json(records)
        return 0
    if not records:
        print(f"no artifacts in {args.store}/")
        return 0
    for record in records:
        spec = record.get("spec", {})
        provenance = record.get("provenance", {})
        print(
            f"{record['digest'][:12]}  {spec.get('scenario', '?'):<12} "
            f"seed {spec.get('seed', '?'):<4} {spec.get('acquisition', '?'):<8} "
            f"rmse {provenance.get('test_rmse_dbm', float('nan')):.2f} dB  "
            f"{provenance.get('n_macs', '?')} APs"
        )
    return 0


def _cmd_report(args) -> int:
    from .analysis import (
        SWEEP_COLUMNS,
        artifact_rows,
        group_stats,
        render_sweep_report,
        save_csv_rows,
        stage_stats,
    )
    from .serve import ArtifactStore

    store = ArtifactStore(args.store)
    records = store.list()
    rows = artifact_rows(records)
    stages = stage_stats(records)
    if args.csv:
        save_csv_rows(
            list(SWEEP_COLUMNS),
            [[row[column] for column in SWEEP_COLUMNS] for row in rows],
            args.csv,
        )
    rendered = render_sweep_report(rows, by=args.by, value=args.value)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if args.json:
        _print_json(
            {
                "rows": rows,
                "stats": group_stats(rows, by=args.by, value=args.value),
                "stage_wall_s": stages,
                "csv": args.csv,
                "report": args.out,
            }
        )
        return 0
    print(rendered)
    if stages:
        print("\nbuild stage breakdown (total wall seconds across builds):\n")
        for stage, s in stages.items():
            print(
                f"  {stage:<12} {s['total_s']:8.3f}s total  "
                f"{s['mean_s']:.3f}s mean  over {int(s['n'])} build(s)"
            )
    if args.csv:
        print(f"\ntidy rows written to {args.csv}", file=sys.stderr)
    if args.out:
        print(f"report written to {args.out}", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    from .serve import ArtifactStore, RemCluster, RemService, create_server

    store = ArtifactStore(args.store)
    if args.workers > 1:
        cluster = RemCluster(
            args.store,
            workers=args.workers,
            host=args.host,
            port=args.port,
            capacity=args.capacity,
            reuse_port=False if args.no_reuse_port else None,
        )
        cluster.start()
        host, port = cluster.address
        mode = "inherited listener" if args.no_reuse_port else "SO_REUSEPORT"
        print(
            f"serving {store.count()} artifact(s) from {args.store}/ "
            f"on http://{host}:{port} with {args.workers} workers "
            f"({mode}; Ctrl-C to stop)"
        )
        cluster.run_forever()
        print("\nshutting down")
        return 0
    service = RemService(store, capacity=args.capacity)
    server = create_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"serving {store.count()} artifact(s) from {args.store}/ "
        f"on http://{host}:{port} (Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0


def _load_spec(args):
    """Resolve the BuildingSpec a ``scenarios generate`` call describes.

    ``--set`` overrides compose onto a ``--spec`` file; ``--template``
    conflicts with one (the template is part of the loaded spec).
    """
    from .radio import BuildingSpec

    overrides = {}
    for item in args.overrides:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--set expects FIELD=VALUE, got {item!r}")
        overrides[key] = value
    if args.spec:
        if args.template is not None:
            raise SystemExit("--template conflicts with --spec")
        text = (
            sys.stdin.read()
            if args.spec == "-"
            else open(args.spec, encoding="utf-8").read()
        )
        params = json.loads(text)
        params.update(overrides)
        return BuildingSpec.from_dict(params)
    params = {"template": args.template or "room-grid", **overrides}
    params.setdefault("seed", args.seed)
    return BuildingSpec.from_dict(params)


def _scenario_record(scenario, name: str) -> dict:
    """JSON-safe description shared by ``list --json`` and ``describe``."""
    environment = scenario.environment
    record = {
        "name": name,
        "environment": environment.name,
        "n_walls": len(environment.walls),
        "n_aps": len(environment.access_points),
        "n_ssids": len({ap.ssid for ap in environment.access_points}),
        "flight_volume": [
            list(scenario.flight_volume.min_corner),
            list(scenario.flight_volume.max_corner),
        ],
        "building": [
            list(scenario.building.min_corner),
            list(scenario.building.max_corner),
        ],
    }
    metadata = getattr(scenario, "metadata", None)
    if metadata:
        record["generated"] = metadata
    return record


def _cmd_scenarios(args) -> int:
    from .radio import (
        AP_POLICIES,
        GENERATED_PRESETS,
        PALETTES,
        TEMPLATES,
        available_scenarios,
        build_scenario,
        generate_building,
    )

    if args.scenarios_command == "list":
        if args.json:
            _print_json(
                {
                    "registered": list(available_scenarios()),
                    "generated_presets": dict(GENERATED_PRESETS),
                    "templates": list(TEMPLATES),
                    "palettes": sorted(PALETTES),
                    "ap_policies": list(AP_POLICIES),
                }
            )
            return 0
        print("registered scenarios:")
        for name in available_scenarios():
            suffix = (
                f"  -> {GENERATED_PRESETS[name]}"
                if name in GENERATED_PRESETS
                else ""
            )
            print(f"  {name}{suffix}")
        print("generated templates (use generated:<template>?field=value&...):")
        for template in TEMPLATES:
            print(f"  {template}")
        print(f"palettes   : {', '.join(sorted(PALETTES))}")
        print(f"AP policies: {', '.join(AP_POLICIES)}")
        return 0

    if args.scenarios_command == "describe":
        target = args.target
        if target == "-" or target.endswith(".json"):
            spec_args = argparse.Namespace(
                spec=target, template=None, overrides=[], seed=args.seed
            )
            spec = _load_spec(spec_args)
            scenario = generate_building(spec)
            target = spec.to_name()
        else:
            scenario = build_scenario(target, seed=args.seed)
        record = _scenario_record(scenario, target)
        if args.json:
            _print_json(record)
            return 0
        print(f"scenario      : {record['name']}")
        print(f"environment   : {record['environment']}")
        print(f"walls         : {record['n_walls']}")
        print(f"APs / SSIDs   : {record['n_aps']} / {record['n_ssids']}")
        fv_lo, fv_hi = record["flight_volume"]
        size = [hi - lo for lo, hi in zip(fv_lo, fv_hi)]
        print(
            "flight volume : "
            f"{size[0]:.2f} x {size[1]:.2f} x {size[2]:.2f} m"
        )
        generated = record.get("generated")
        if generated:
            print(
                f"generated     : {generated['template']} / "
                f"{generated['palette']} / {generated['ap_policy']}, "
                f"{generated['floors']} floor(s), "
                f"rooms/floor {generated['rooms_per_floor']}"
            )
        return 0

    # generate: spec in (flags or JSON) -> canonical spec JSON out.
    spec = _load_spec(args)
    scenario = generate_building(spec)
    metadata = scenario.metadata
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(spec.to_json() + "\n")
    if args.json:
        _print_json(
            {
                "spec": json.loads(spec.to_json()),
                "metadata": metadata,
                "out": args.out,
            }
        )
        return 0
    print(
        f"built {metadata['name']}: {metadata['n_walls']} walls, "
        f"{metadata['n_aps']} APs, {metadata['floors']} floor(s)",
        file=sys.stderr,
    )
    if args.out:
        print(f"spec written to {args.out}", file=sys.stderr)
    else:
        print(spec.to_json())
    return 0


_COMMANDS = {
    "campaign": _cmd_campaign,
    "figures": _cmd_figures,
    "endurance": _cmd_endurance,
    "localization": _cmd_localization,
    "density": _cmd_density,
    "rem": _cmd_rem,
    "scenarios": _cmd_scenarios,
    "jobs": _cmd_jobs,
    "report": _cmd_report,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
