"""Command-line interface: ``python -m repro <command>``.

Subcommands map one-to-one onto the reproduction's top-level flows:

* ``campaign``     — fly the 72-waypoint demo campaign, print §III-A
  statistics, optionally archive samples to CSV;
* ``figures``      — regenerate the paper's figures as ASCII;
* ``endurance``    — run the §III-A endurance protocol;
* ``localization`` — the §II-B anchor/mode accuracy table;
* ``density``      — the future-work REM density curve;
* ``rem``          — generate a REM and export it as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Small UAVs-supported Autonomous Generation of "
            "Fine-grained 3D Indoor Radio Environmental Maps' (ICDCS 2022)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=63, help="master scenario seed (default 63)"
    )
    parser.add_argument(
        "--scenario",
        default="condo",
        help=(
            "registered RF scenario to run in (e.g. condo, office, "
            "warehouse; default condo)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    campaign = commands.add_parser("campaign", help="fly the demo campaign")
    campaign.add_argument("--output", help="CSV path to archive the samples")
    campaign.add_argument(
        "--active",
        action="store_true",
        help=(
            "uncertainty-driven acquisition instead of the fixed lattice: "
            "fly a seed batch, refit online, fly where the map is least "
            "certain, repeat until a stopping rule fires"
        ),
    )
    campaign.add_argument(
        "--budget",
        type=int,
        default=72,
        help="active sampling: max waypoints to fly (default 72)",
    )
    campaign.add_argument(
        "--target-rmse",
        type=float,
        default=None,
        help=(
            "active sampling: stop once the holdout RMSE (dB) drops to "
            "this level (default: fly the whole budget)"
        ),
    )
    campaign.add_argument(
        "--batch",
        type=int,
        default=6,
        help="active sampling: waypoints acquired per round (default 6)",
    )

    figures = commands.add_parser("figures", help="regenerate paper figures")
    figures.add_argument(
        "--figure",
        choices=("5", "6", "7", "8", "all"),
        default="all",
        help="which figure to regenerate",
    )

    commands.add_parser("endurance", help="run the §III-A endurance protocol")
    commands.add_parser("localization", help="anchor/mode accuracy table")

    density = commands.add_parser("density", help="REM density study")
    density.add_argument(
        "--counts",
        default="3,6,12,24,40,54",
        help="comma-separated training-location counts",
    )

    rem = commands.add_parser("rem", help="generate and export a REM")
    rem.add_argument("--resolution", type=float, default=0.25, help="lattice step (m)")
    rem.add_argument("--output", default="rem.json", help="JSON output path")
    rem.add_argument(
        "--tune", action="store_true", help="grid-search hyper-parameters (slower)"
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_campaign(args) -> int:
    from .analysis import campaign_stats
    from .radio import build_scenario
    from .station import run_campaign

    if args.active:
        return _cmd_campaign_active(args)
    scenario = build_scenario(args.scenario, seed=args.seed)
    print(f"flying the {args.scenario!r} campaign (seed {args.seed})...")
    result = run_campaign(scenario=scenario)
    stats = campaign_stats(result)
    print(f"total samples : {stats.total_samples} (paper: 2696)")
    for uav, count in sorted(stats.samples_by_uav.items()):
        print(f"  {uav}: {count}")
    print(f"distinct MACs : {stats.distinct_macs} (paper: 73)")
    print(f"distinct SSIDs: {stats.distinct_ssids} (paper: 49)")
    print(f"mean RSS      : {stats.mean_rss_dbm:.1f} dBm (paper: ≈ -73)")
    if args.output:
        result.log.save_csv(args.output)
        print(f"samples archived to {args.output}")
    return 0


def _cmd_campaign_active(args) -> int:
    from .analysis import render_active_trajectory
    from .radio import build_scenario
    from .station import ActiveSamplingConfig, run_active_campaign

    if args.budget < 1:
        print("--budget must be >= 1", file=sys.stderr)
        return 2
    if args.batch < 1:
        print("--batch must be >= 1", file=sys.stderr)
        return 2
    scenario = build_scenario(args.scenario, seed=args.seed)
    active = ActiveSamplingConfig(
        seed_waypoints=min(12, args.budget),
        batch_size=args.batch,
        budget_waypoints=args.budget,
        target_rmse_dbm=args.target_rmse,
    )
    print(
        f"flying the {args.scenario!r} campaign with active sampling "
        f"(seed {args.seed}, budget {args.budget} waypoints"
        + (
            f", target RMSE {args.target_rmse:.2f} dB)..."
            if args.target_rmse is not None
            else ")..."
        )
    )
    result = run_active_campaign(scenario=scenario, active=active)
    print(render_active_trajectory(result.rounds))
    summary = result.summary()
    print(
        f"stopped: {result.stop_reason} after "
        f"{result.waypoints_flown}/{args.budget} waypoints, "
        f"{summary['total_samples']:.0f} samples, "
        f"{summary['distinct_macs']:.0f} MACs"
    )
    if result.final_rmse_dbm is not None:
        print(f"final holdout RMSE: {result.final_rmse_dbm:.3f} dB")
    if args.output:
        result.log.save_csv(args.output)
        print(f"samples archived to {args.output}")
    return 0


def _cmd_figures(args) -> int:
    from .analysis import (
        figure5,
        figure6,
        figure7,
        figure8,
        render_figure5,
        render_figure7,
        render_figure8,
    )
    from .radio import build_scenario
    from .station import run_campaign

    wanted = args.figure
    scenario = build_scenario(args.scenario, seed=args.seed)
    if wanted in ("5", "all"):
        print("=== Figure 5 ===")
        print(render_figure5(figure5(scenario=scenario)))
        print()
    if wanted in ("6", "7", "8", "all"):
        campaign = run_campaign(scenario=scenario)
        if wanted in ("6", "all"):
            print("=== Figure 6 ===")
            fig6 = figure6(campaign)
            for uav, rows in fig6.per_location.items():
                counts = [c for _, c, _ in sorted(rows)]
                print(f"{uav} (total {sum(counts)}):")
                print("  " + " ".join(f"{c:3d}" for c in counts))
            print()
        if wanted in ("7", "all"):
            print("=== Figure 7 ===")
            print(render_figure7(figure7(campaign)))
            print()
        if wanted in ("8", "all"):
            print("=== Figure 8 ===")
            print(render_figure8(figure8(campaign.log)))
    return 0


def _cmd_endurance(args) -> int:
    from .station import run_endurance_test

    print(f"running the endurance protocol (seed {args.seed})...")
    result = run_endurance_test(seed=args.seed)
    print(
        f"{result.scans_completed} scans in {result.minutes_seconds} "
        f"(paper: 36 scans in 6 min 12 s)"
    )
    print(f"battery at {result.battery_remaining_fraction:.1%} when erratic")
    return 0


def _cmd_localization(args) -> int:
    import numpy as np

    from .analysis import table
    from .radio import build_scenario
    from .uwb import LocalizationMode, corner_layout, evaluate_hovering_accuracy

    scenario = build_scenario(args.scenario, seed=args.seed)
    layout = corner_layout(scenario.flight_volume)
    rng = np.random.default_rng(args.seed)
    rows = []
    for mode in (LocalizationMode.TWR, LocalizationMode.TDOA):
        for count in (4, 6, 8):
            result = evaluate_hovering_accuracy(
                layout.subset(count), mode, (1.87, 1.6, 1.0), rng
            )
            rows.append([mode, count, f"{result.mean_error_m * 100:.1f}"])
    print(table(["mode", "anchors", "mean error (cm)"], rows))
    print("(paper §II-B: ~9 cm with 6 anchors)")
    return 0


def _cmd_density(args) -> int:
    from .core import density_sweep
    from .radio import build_scenario
    from .station import run_campaign

    counts = [int(c) for c in args.counts.split(",")]
    scenario = build_scenario(args.scenario, seed=args.seed)
    print("flying the campaign for the density study...")
    campaign = run_campaign(scenario=scenario)
    result = density_sweep(campaign.log, location_counts=counts)
    for point in sorted(result.points, key=lambda p: p.n_locations):
        print(
            f"{point.n_locations:3d} locations "
            f"({point.n_train_samples:4d} samples) -> {point.rmse_dbm:.3f} dBm"
        )
    print(f"density knee (0.2 dB): {result.knee_locations():d} locations")
    return 0


def _cmd_rem(args) -> int:
    from .core import ToolchainConfig, generate_rem
    from .station import CampaignConfig

    config = ToolchainConfig(
        campaign=CampaignConfig(seed=args.seed, scenario=args.scenario),
        tune_hyperparameters=args.tune,
        rem_resolution_m=args.resolution,
    )
    print(
        f"generating the {args.scenario!r} REM "
        f"(seed {args.seed}, {args.resolution} m lattice)..."
    )
    result = generate_rem(config=config)
    summary = result.summary()
    print(
        f"{summary['samples']:.0f} samples, test RMSE "
        f"{summary['test_rmse_dbm']:.2f} dBm, {summary['rem_macs']:.0f} APs mapped"
    )
    with open(args.output, "w") as handle:
        json.dump(result.rem.to_dict(), handle)
    print(f"REM exported to {args.output}")
    return 0


_COMMANDS = {
    "campaign": _cmd_campaign,
    "figures": _cmd_figures,
    "endurance": _cmd_endurance,
    "localization": _cmd_localization,
    "density": _cmd_density,
    "rem": _cmd_rem,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
