"""Lightweight stage timers: named wall-clock spans for build observability.

The build pipeline (:func:`repro.serve.jobs.run_job`) threads a
:class:`StageTimer` through its stages — scenario construction, the
campaign sim, preprocessing, the model fit, the REM tensor, the
artifact save — and records the per-stage wall seconds into the
artifact's provenance sidecar (``provenance["stage_wall_s"]``).
``repro report`` aggregates them across a sweep, so a perf regression
is attributable to a stage instead of drowning in one end-to-end
number.

Timers are plain dictionaries behind a context-manager API; there is
no global registry or thread-local magic, so they are free when unused
and trivially safe under the multi-process sweep runner (each worker
times its own jobs).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["StageTimer", "maybe_span"]


class StageTimer:
    """Accumulates named wall-clock spans.

    Usage::

        timer = StageTimer()
        with timer.span("campaign"):
            ...fly...
        timer.wall_s()   # {"campaign": 0.18}

    Re-entering a stage name accumulates (useful for chunked stages);
    nested spans each record their own wall time independently.
    """

    def __init__(self) -> None:
        self._wall_s: Dict[str, float] = {}

    @contextmanager
    def span(self, stage: str) -> Iterator[None]:
        """Time a ``with`` block under ``stage`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._wall_s[stage] = self._wall_s.get(stage, 0.0) + elapsed

    def add(self, stage: str, wall_s: float) -> None:
        """Fold an externally-measured duration into ``stage``."""
        self._wall_s[stage] = self._wall_s.get(stage, 0.0) + float(wall_s)

    def wall_s(self) -> Dict[str, float]:
        """Per-stage wall seconds recorded so far (a copy)."""
        return dict(self._wall_s)

    def total_s(self) -> float:
        """Sum of all recorded spans."""
        return float(sum(self._wall_s.values()))

    def __bool__(self) -> bool:
        """True once at least one span has been recorded."""
        return bool(self._wall_s)


def maybe_span(timer: Optional[StageTimer], stage: str):
    """``timer.span(stage)`` when a timer is present, else a no-op span.

    Lets pipeline stages stay un-instrumented-looking at call sites
    that may or may not have been handed a timer.
    """
    if timer is not None:
        return timer.span(stage)
    return _NULL_SPAN


class _NullSpan:
    """A reusable no-op context manager."""

    def __enter__(self) -> None:
        """Do nothing."""
        return None

    def __exit__(self, *exc) -> bool:
        """Propagate any exception."""
        return False


_NULL_SPAN = _NullSpan()
