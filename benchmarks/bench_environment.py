"""BENCH-ENVIRONMENT — the vectorized link-budget engine.

Times the simulation side of the stack that PR 1 left scalar: the
environment→scanner hot path.  Three measurements:

* dense ground-truth field generation — one batched
  ``mean_rss_dbm_many`` call vs the seed's per-point scalar loop
  (``crossed_walls`` re-walked per query), with 1e-9 equivalence
  asserted between the two;
* channel-sweep scan throughput (the per-waypoint cost every campaign
  pays at every lattice point);
* an end-to-end active campaign (smoke-sized), the workload
  ``BENCH_active_sampling.json`` showed dominated by scalar RSS
  queries.

Emits ``BENCH_environment.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (coarser probe
grid, relaxed speedup floor).  The speedup assertion *is* the CI
quality gate: the smoke job fails when the batched path drops below
the floor.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.radio import build_demo_scenario, crossed_walls
from repro.station import ActiveSamplingConfig, run_active_campaign
from repro.wifi import ChannelSweepScanner

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
PROBE_SHAPE = (5, 4, 3) if QUICK else (12, 10, 6)
#: CI gate: the batched ground-truth path must beat the scalar loop by
#: at least this factor (small smoke grids amortize less per call).
MIN_SPEEDUP = 3.0 if QUICK else 10.0
N_SCANS = 5 if QUICK else 25

_RECORD: dict = {"quick": QUICK}


@pytest.fixture(scope="module")
def scenario():
    return build_demo_scenario()


@pytest.fixture(scope="module")
def probes(scenario):
    return scenario.flight_volume.grid(*PROBE_SHAPE, margin=0.2)


def _scalar_mean_rss_fields(environment, macs, points):
    """The seed's ground-truth loop: one full link budget per query.

    Replicates the pre-batching implementation — ``crossed_walls``
    re-walks the wall list and the shadowing field is evaluated
    point by point — as the timing baseline the engine is gated
    against.
    """
    base = environment.path_loss.base
    cap = environment.path_loss.max_wall_loss_db
    walls = environment.walls
    fields = {}
    for mac in macs:
        ap = environment.ap_by_mac(mac)
        field = environment.shadowing.field_for(mac)
        rows = np.empty(len(points))
        for j, point in enumerate(points):
            wall_loss = min(
                sum(
                    w.material.attenuation_db
                    for w in crossed_walls(ap.position, point, walls)
                ),
                cap,
            )
            loss = base.path_loss_db(ap.position, point) + wall_loss
            rows[j] = ap.tx_power_dbm - loss - field.sample(point)
        fields[mac] = rows
    return fields


def test_ground_truth_speedup_vs_scalar(scenario, probes):
    """Batched dense ground truth must beat the scalar loop >= 10x."""
    environment = scenario.environment
    macs = [ap.mac for ap in environment.access_points]

    t0 = time.perf_counter()
    scalar = _scalar_mean_rss_fields(environment, macs, probes)
    scalar_s = time.perf_counter() - t0

    environment.clear_wall_cache()  # time the cold geometry, not a replay
    t0 = time.perf_counter()
    batched = environment.mean_rss_dbm_many(macs, probes)
    batched_s = time.perf_counter() - t0

    worst = 0.0
    for i, mac in enumerate(macs):
        worst = max(worst, float(np.abs(batched[i] - scalar[mac]).max()))
    assert worst < 1e-9, f"batched/scalar disagree by {worst:.2e} dB"

    speedup = scalar_s / batched_s
    print(
        f"\nscalar {scalar_s:.3f}s vs batched {batched_s:.4f}s -> "
        f"{speedup:.1f}x ({len(macs)} APs x {len(probes)} probes, "
        f"{len(environment.walls)} walls, max |diff| {worst:.1e} dB)"
    )
    _RECORD["n_aps"] = len(macs)
    _RECORD["n_walls"] = len(environment.walls)
    _RECORD["probe_shape"] = list(PROBE_SHAPE)
    _RECORD["probe_points"] = len(probes)
    _RECORD["scalar_ground_truth_s"] = scalar_s
    _RECORD["batched_ground_truth_s"] = batched_s
    _RECORD["ground_truth_speedup"] = speedup
    _RECORD["max_abs_diff_db"] = worst
    assert speedup >= MIN_SPEEDUP, f"batched path only {speedup:.2f}x faster"


def test_cached_refit_is_faster_than_cold(scenario, probes):
    """A second pass over the same probe grid must hit the wall cache."""
    environment = scenario.environment
    macs = [ap.mac for ap in environment.access_points]
    environment.clear_wall_cache()
    t0 = time.perf_counter()
    cold = environment.mean_rss_dbm_many(macs, probes)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = environment.mean_rss_dbm_many(macs, probes)
    warm_s = time.perf_counter() - t0
    np.testing.assert_array_equal(cold, warm)
    print(f"\ncold {cold_s:.4f}s vs cached {warm_s:.4f}s")
    _RECORD["cold_block_s"] = cold_s
    _RECORD["cached_block_s"] = warm_s
    assert warm_s <= cold_s * 1.5, "wall-loss cache made the replay slower"


def test_scan_throughput(scenario):
    """Full channel sweeps per second at random flight-volume points."""
    environment = scenario.environment
    scanner = ChannelSweepScanner(environment)
    rng = np.random.default_rng(29)
    lo = np.asarray(scenario.flight_volume.min_corner)
    hi = np.asarray(scenario.flight_volume.max_corner)
    positions = rng.uniform(lo, hi, size=(N_SCANS, 3))
    t0 = time.perf_counter()
    detected = [len(scanner.scan(p, rng, 3.0)) for p in positions]
    elapsed = time.perf_counter() - t0
    rate = N_SCANS / elapsed
    print(f"\n{rate:.0f} scans/s (mean {np.mean(detected):.1f} APs/scan)")
    _RECORD["scans_per_s"] = rate
    _RECORD["mean_aps_per_scan"] = float(np.mean(detected))
    assert all(d > 0 for d in detected)


def test_active_campaign_wall_time():
    """End-to-end smoke campaign: the workload the engine accelerates."""
    t0 = time.perf_counter()
    result = run_active_campaign(
        active=ActiveSamplingConfig(
            seed_waypoints=8, batch_size=8, budget_waypoints=16
        )
    )
    wall_s = time.perf_counter() - t0
    print(f"\n16-waypoint active campaign in {wall_s:.2f}s")
    _RECORD["smoke_active_waypoints"] = result.waypoints_flown
    _RECORD["smoke_active_wall_s"] = wall_s
    assert result.waypoints_flown == 16


def test_emit_perf_record():
    """Write BENCH_environment.json (runs last: depends on the others)."""
    out = Path(__file__).resolve().parent.parent / "BENCH_environment.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
