"""Micro-benchmarks of the substrate hot paths.

Not a paper artifact — these guard the simulation's own performance:
event-kernel throughput, propagation queries, EKF steps, k-NN predict.
"""

from __future__ import annotations

import numpy as np
from repro.core.predictors import KnnRegressor
from repro.sim import Simulator, Timeout, spawn
from repro.uwb import LocalizationMode, PositionEstimator, corner_layout
from repro.wifi import ChannelSweepScanner


def test_event_kernel_throughput(benchmark):
    """Schedule+fire 10k events."""

    def run():
        sim = Simulator()
        counter = {"fired": 0}
        for i in range(10_000):
            sim.schedule(
                i * 1e-4, lambda: counter.__setitem__("fired", counter["fired"] + 1)
            )
        sim.run()
        return counter["fired"]

    fired = benchmark(run)
    assert fired == 10_000


def test_process_switching_throughput(benchmark):
    """10 processes x 1k timeouts."""

    def run():
        sim = Simulator()
        done = []

        def worker():
            for _ in range(1000):
                yield Timeout(0.001)
            done.append(True)

        for _ in range(10):
            spawn(sim, worker())
        sim.run()
        return len(done)

    assert benchmark(run) == 10


def test_mean_rss_query_rate(benchmark, demo_scenario):
    """Mean-RSS evaluation across the whole AP population (scalar API)."""
    env = demo_scenario.environment
    position = demo_scenario.flight_volume.center

    def run():
        return sum(env.mean_rss_dbm(ap, position) for ap in env.access_points)

    total = benchmark(run)
    assert np.isfinite(total)


def test_mean_rss_query_rate_batched(benchmark, demo_scenario):
    """The same population query through one ``mean_rss_dbm_many`` call."""
    env = demo_scenario.environment
    position = demo_scenario.flight_volume.center
    macs = [ap.mac for ap in env.access_points]

    total = benchmark(lambda: float(env.mean_rss_dbm_many(macs, [position]).sum()))
    assert np.isfinite(total)


def test_full_scan_latency(benchmark, demo_scenario):
    """One full 13-channel sweep."""
    scanner = ChannelSweepScanner(demo_scenario.environment)
    rng = np.random.default_rng(0)
    report = benchmark(lambda: scanner.scan((1.5, 1.5, 1.0), rng, 3.0))
    assert len(report) > 10


def test_ekf_step_rate(benchmark, demo_scenario):
    """One second of TDoA filtering (25 batches)."""
    layout = corner_layout(demo_scenario.flight_volume)
    rng = np.random.default_rng(0)

    def run():
        estimator = PositionEstimator(
            layout, mode=LocalizationMode.TDOA, initial_position=(1.8, 1.6, 1.0)
        )
        for _ in range(25):
            estimator.step(0.04, (1.8, 1.6, 1.0), rng)
        return estimator.position

    position = benchmark(run)
    assert np.isfinite(position).all()


def test_knn_predict_throughput(benchmark, preprocessed):
    """Predict the full test split with the paper's best model."""
    model = KnnRegressor(n_neighbors=16, onehot_scale=3.0).fit(preprocessed.train)

    predictions = benchmark(lambda: model.predict(preprocessed.test))
    assert len(predictions) == len(preprocessed.test)
