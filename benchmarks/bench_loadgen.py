"""BENCH-LOADGEN — the multi-process serving path under real load.

Drives :class:`repro.serve.RemCluster` (pre-forked workers over one
shared port, mmap-shared ``npy`` artifacts) with the keep-alive load
generator in :mod:`repro.serve.loadgen`:

* a (workers × batch-size) closed-loop sweep recording throughput AND
  p50/p95/p99 latency per point — the honest per-request numbers;
* a pipelined peak run — the round-trips/s headline, asserted (full
  mode) at >= 10x the pre-cluster stdlib baseline recorded in
  ``BENCH_service.json``;
* per-worker RSS at each worker count: mmap page sharing means adding
  workers must not multiply resident artifact memory;
* a 2-worker >= 1.5x single-worker scaling gate (only where the box
  actually has >= 2 CPUs — kernel accept balancing cannot beat physics
  on one core).

Emits ``BENCH_loadgen.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve import ArtifactStore, RemCluster, RemJobSpec, run_job
from repro.serve.loadgen import HttpLoadClient, run_closed_loop, run_pipelined

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
CPUS = os.cpu_count() or 1

#: Full-mode ``http_round_trips_per_s`` of the single-process stdlib
#: server before this harness existed (BENCH_service.json at the
#: cluster's introduction) — the 10x target's denominator.
BASELINE_RT_PER_S = 503.327

WORKER_COUNTS = [1, 2] if QUICK else [1, 2, 4]
BATCH_SIZES = [1, 8] if QUICK else [1, 8, 64]
CONNECTIONS = 2 if QUICK else 4
REQUESTS_PER_CONNECTION = 50 if QUICK else 300
PIPELINE_DEPTH = 16 if QUICK else 32
PIPELINE_REQUESTS = 600 if QUICK else 4000
PIPELINE_REPEATS = 1 if QUICK else 3

_RECORD: dict = {
    "quick": QUICK,
    "cpu_count": CPUS,
    "baseline_http_round_trips_per_s": BASELINE_RT_PER_S,
    "closed_loop": [],
    "rss_by_workers": {},
}


@pytest.fixture(scope="module")
def spec():
    return RemJobSpec(
        acquisition="active",
        active={
            "seed_waypoints": 8,
            "batch_size": 8,
            "budget_waypoints": 8 if QUICK else 24,
        },
        tune=False,
        min_samples_per_mac=2 if QUICK else 4,
        resolution_m=0.5 if QUICK else 0.25,
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    # npy storage so cluster workers mmap one page-cache copy.
    return ArtifactStore(tmp_path_factory.mktemp("loadgen-store"), "npy")


@pytest.fixture(scope="module")
def artifact(spec, store):
    t0 = time.perf_counter()
    built = run_job(spec, store)
    _RECORD["build_wall_s"] = time.perf_counter() - t0
    _RECORD["n_macs"] = len(built.rem.macs)
    _RECORD["rem_shape"] = list(built.rem.grid.shape)
    return built


def query_bodies(artifact, batch_size, n_bodies=16, seed=13):
    """Pre-encoded query bodies with ``batch_size`` points each."""
    rng = np.random.default_rng(seed)
    lo = np.asarray(artifact.rem.grid.volume.min_corner)
    hi = np.asarray(artifact.rem.grid.volume.max_corner)
    bodies = []
    for _ in range(n_bodies):
        points = rng.uniform(lo, hi, size=(batch_size, 3)).round(4)
        bodies.append(
            json.dumps({"type": "query", "points": points.tolist()}).encode()
        )
    return bodies


def query_path(artifact):
    return f"/v1/artifacts/{artifact.digest}/query"


def warm_up(cluster, artifact):
    """Touch every worker's LRU/page cache before measuring."""
    run_closed_loop(
        cluster.address,
        query_path(artifact),
        query_bodies(artifact, 1, n_bodies=4),
        connections=max(2, cluster.workers),
        requests_per_connection=10,
    )


def test_served_answers_match_direct(store, artifact):
    """Gate first: cluster answers ≡ the direct REM at 1e-9."""
    bodies = query_bodies(artifact, 4, n_bodies=3)
    with RemCluster(store.root, workers=2) as cluster:
        with HttpLoadClient(cluster.address) as client:
            for body in bodies:
                status, raw = client.post(query_path(artifact), body)
                assert status == 200
                payload = json.loads(raw)
                points = json.loads(body)["points"]
                direct = artifact.rem.query_many(points)
                np.testing.assert_allclose(
                    np.asarray(payload["values"]), direct, atol=1e-9
                )


def test_closed_loop_sweep(store, artifact):
    """Throughput + latency percentiles over (workers × batch size)."""
    for workers in WORKER_COUNTS:
        with RemCluster(store.root, workers=workers) as cluster:
            warm_up(cluster, artifact)
            for batch in BATCH_SIZES:
                result = run_closed_loop(
                    cluster.address,
                    query_path(artifact),
                    query_bodies(artifact, batch),
                    connections=CONNECTIONS,
                    requests_per_connection=REQUESTS_PER_CONNECTION,
                )
                assert result.errors == 0
                entry = {
                    "workers": workers,
                    "batch_size": batch,
                    **result.to_dict(),
                    "points_per_s": result.throughput_rps * batch,
                }
                _RECORD["closed_loop"].append(entry)
                print(
                    f"\nworkers={workers} batch={batch}: "
                    f"{result.throughput_rps:.0f} rt/s "
                    f"p50={result.latency_ms['p50']:.2f}ms "
                    f"p99={result.latency_ms['p99']:.2f}ms"
                )
            rss = [v for v in cluster.worker_rss().values() if v]
            if rss:
                _RECORD["rss_by_workers"][str(workers)] = {
                    "mean_bytes": float(np.mean(rss)),
                    "max_bytes": float(max(rss)),
                }


def test_batch_queries_amortize_round_trips(store, artifact):
    """Point throughput must grow with batch size (fewer round trips)."""
    rows = _RECORD["closed_loop"]
    assert rows, "closed-loop sweep must run first"
    for workers in WORKER_COUNTS:
        mine = {r["batch_size"]: r for r in rows if r["workers"] == workers}
        small, large = min(mine), max(mine)
        gain = mine[large]["points_per_s"] / mine[small]["points_per_s"]
        print(f"\nworkers={workers}: batch {large} vs {small} = {gain:.1f}x points/s")
        assert gain >= 2.0, (
            f"batch={large} should amortize round trips over batch={small}, "
            f"got only {gain:.2f}x points/s"
        )


def test_worker_rss_stays_flat_with_mmap(store, artifact):
    """Adding workers must not multiply resident artifact memory."""
    rss = _RECORD["rss_by_workers"]
    if len(rss) < 2:
        pytest.skip("no /proc RSS readings on this platform")
    means = {int(k): v["mean_bytes"] for k, v in rss.items()}
    low, high = means[min(means)], means[max(means)]
    ratio = high / low
    print(f"\nmean worker RSS {min(means)}w -> {max(means)}w: {ratio:.3f}x")
    # mmap page sharing: per-worker RSS flat (±10%) as workers scale.
    assert ratio < 1.10, (
        f"per-worker RSS grew {ratio:.2f}x from {min(means)} to "
        f"{max(means)} workers — artifacts are not being page-shared"
    )


def test_pipelined_peak_round_trips(store, artifact):
    """The headline: peak HTTP round trips/s vs the stdlib baseline."""
    best = None
    for workers in WORKER_COUNTS:
        with RemCluster(store.root, workers=workers) as cluster:
            warm_up(cluster, artifact)
            for _ in range(PIPELINE_REPEATS):
                result = run_pipelined(
                    cluster.address,
                    query_path(artifact),
                    query_bodies(artifact, 1),
                    depth=PIPELINE_DEPTH,
                    requests_per_connection=PIPELINE_REQUESTS,
                    connections=min(workers, max(1, CPUS - 1)) or 1,
                )
                assert result.errors == 0
                if best is None or result.throughput_rps > best["rt_per_s"]:
                    best = {
                        "workers": workers,
                        "rt_per_s": result.throughput_rps,
                        "mode": result.mode,
                        "connections": result.connections,
                    }
    speedup = best["rt_per_s"] / BASELINE_RT_PER_S
    _RECORD["pipelined_best"] = best
    _RECORD["speedup_vs_baseline"] = speedup
    print(
        f"\npeak {best['rt_per_s']:.0f} rt/s ({best['mode']}, "
        f"workers={best['workers']}) = {speedup:.1f}x baseline"
    )
    if not QUICK:
        assert speedup >= 10.0, (
            f"peak {best['rt_per_s']:.0f} rt/s is only {speedup:.1f}x the "
            f"{BASELINE_RT_PER_S:.0f} rt/s single-process baseline"
        )


@pytest.mark.skipif(CPUS < 2, reason="multi-worker scaling needs >= 2 CPUs")
def test_two_workers_scale_over_one(store, artifact):
    """2 workers >= 1.5x 1 worker closed-loop throughput (the CI gate)."""
    rates = {}
    for workers in (1, 2):
        with RemCluster(store.root, workers=workers) as cluster:
            warm_up(cluster, artifact)
            result = run_closed_loop(
                cluster.address,
                query_path(artifact),
                query_bodies(artifact, 1),
                connections=max(4, CONNECTIONS),
                requests_per_connection=REQUESTS_PER_CONNECTION,
            )
            assert result.errors == 0
            rates[workers] = result.throughput_rps
    scaling = rates[2] / rates[1]
    _RECORD["two_worker_scaling"] = scaling
    print(f"\n2-worker scaling: {scaling:.2f}x ({rates[1]:.0f} -> {rates[2]:.0f} rt/s)")
    assert scaling >= 1.5, (
        f"2 workers only {scaling:.2f}x 1 worker on a {CPUS}-CPU box"
    )


def test_emit_perf_record():
    """Write BENCH_loadgen.json (runs last: depends on the others)."""
    out = Path(__file__).resolve().parent.parent / "BENCH_loadgen.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
