"""BENCH-ACTIVE-SAMPLING — waypoints-to-target-RMSE vs the fixed lattice.

The paper flies all 72 lattice waypoints and trains afterwards.  The
active campaign flies a 12-waypoint exploratory batch and then buys
waypoints where the online map is least certain.  This bench measures
what that buys, on equal footing:

* both arms fit the paper's tuned k-NN on everything they collected,
  with the §III-B weak-MAC filter (16-of-72 samples, scaled to the
  waypoints actually flown);
* both are scored against the simulator's *ground truth* mean RSS over
  a probe lattice — the quantity no real deployment can observe;
* a truncated-lattice control (the first K snake-order waypoints of
  the fixed grid) isolates the value of uncertainty-driven selection
  from merely flying fewer waypoints.

Emits ``BENCH_active_sampling.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (smaller budget
and probe grid, trend assertions only).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    compare_to_fixed_lattice,
    ground_truth_fields,
    ground_truth_map_rmse,
)
from repro.core.dataset import REMDataset
from repro.core.predictors import KnnRegressor
from repro.station import (
    ActiveSamplingConfig,
    plan_batch_mission,
    run_active_campaign,
    run_campaign,
    snake_order,
    waypoint_grid,
)

#: The paper's tuned configuration (§III-B best performer).
TUNED = dict(n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0)
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Full-protocol knobs (the fixed campaign's 72-waypoint reference).
BUDGET = 24 if QUICK else 72
SEED_WAYPOINTS = 8 if QUICK else 12
BATCH = 8 if QUICK else 6
PROBE_SHAPE = (4, 4, 2) if QUICK else (7, 6, 4)

_RECORD: dict = {"quick": QUICK, "tuned_knn": TUNED}


def _scaled_min_samples(waypoints_flown: int) -> int:
    """The §III-B 16-of-72 weak-MAC threshold, scaled to fewer scans."""
    return max(3, round(16 * waypoints_flown / 72))


def _filtered_fit(dataset, waypoints_flown: int):
    """Tuned k-NN on the dataset minus its weak MACs (scaled filter).

    Returns ``(model, vocabulary)`` — the vocabulary the model's MAC
    indices refer to.
    """
    counts = dataset.samples_per_mac()
    threshold = _scaled_min_samples(waypoints_flown)
    keep = [
        i
        for i, mac in enumerate(dataset.mac_vocabulary)
        if counts[mac] >= threshold
    ]
    subset = dataset.subset(np.flatnonzero(np.isin(dataset.mac_indices, keep)))
    return KnnRegressor(**TUNED).fit(subset), subset.mac_vocabulary


@pytest.fixture(scope="module")
def probes(campaign_result):
    return campaign_result.scenario.flight_volume.grid(*PROBE_SHAPE, margin=0.2)


@pytest.fixture(scope="module")
def fixed_reference(campaign_result, preprocessed, probes):
    """The fixed lattice's ground-truth map RMSE (the bar to reach)."""
    model = KnnRegressor(**TUNED).fit(preprocessed.dataset)
    eval_macs = list(preprocessed.dataset.mac_vocabulary)
    environment = campaign_result.scenario.environment
    # The truth depends only on (MAC, probe): compute once, score every
    # arm and every active round against the same cached fields.
    truth = ground_truth_fields(environment, eval_macs, probes)
    rmse = ground_truth_map_rmse(
        model,
        preprocessed.dataset.mac_vocabulary,
        environment,
        eval_macs,
        probes,
        truth=truth,
    )
    return {
        "waypoints": campaign_result.mission.total_waypoints,
        "rmse_dbm": rmse,
        "eval_macs": eval_macs,
        "truth": truth,
    }


@pytest.fixture(scope="module")
def active_run(campaign_result, fixed_reference, probes):
    """One active campaign with per-round ground-truth scoring."""
    scenario = campaign_result.scenario
    environment = scenario.environment
    eval_macs = fixed_reference["eval_macs"]
    trajectory = []

    def score_round(round_, builder):
        dataset = builder.dataset()
        model, vocabulary = _filtered_fit(dataset, round_.total_waypoints)
        rmse = ground_truth_map_rmse(
            model,
            vocabulary,
            environment,
            eval_macs,
            probes,
            fallback_dbm=float(dataset.rssi_dbm.mean()),
            truth=fixed_reference["truth"],
        )
        trajectory.append((round_.total_waypoints, rmse))

    start = time.perf_counter()
    result = run_active_campaign(
        scenario=scenario,
        active=ActiveSamplingConfig(
            seed_waypoints=SEED_WAYPOINTS,
            batch_size=BATCH,
            budget_waypoints=BUDGET,
        ),
        round_callback=score_round,
    )
    wall_s = time.perf_counter() - start
    return {"result": result, "trajectory": trajectory, "wall_s": wall_s}


def test_active_reaches_fixed_rmse_with_fewer_waypoints(
    active_run, fixed_reference
):
    """The headline: match the 72-waypoint map's RMSE under budget."""
    comparison = compare_to_fixed_lattice(
        fixed_reference["waypoints"],
        fixed_reference["rmse_dbm"],
        active_run["trajectory"],
    )
    record = comparison.summary()
    record["stop_reason"] = active_run["result"].stop_reason
    record["active_wall_s"] = active_run["wall_s"]
    record["probe_shape"] = list(PROBE_SHAPE)
    record["n_eval_macs"] = len(fixed_reference["eval_macs"])
    _RECORD.update(record)
    print(
        f"\nfixed {comparison.fixed_waypoints} waypoints -> "
        f"{comparison.fixed_rmse_dbm:.3f} dB; active matches at "
        f"{comparison.waypoints_to_match} waypoints"
    )

    rmses = [r for _, r in comparison.trajectory]
    assert rmses[-1] < rmses[0], "active map never improved"
    if not QUICK:
        assert comparison.waypoints_to_match is not None, (
            f"active never reached the fixed-lattice RMSE "
            f"({comparison.fixed_rmse_dbm:.3f} dB) within {BUDGET} waypoints"
        )
        assert comparison.waypoints_to_match < comparison.fixed_waypoints, (
            "active needed the whole lattice to match it"
        )


def test_uncertainty_beats_truncated_lattice(
    active_run, fixed_reference, campaign_result, probes
):
    """Control: the same budget spent on a lattice prefix does worse."""
    comparison = compare_to_fixed_lattice(
        fixed_reference["waypoints"],
        fixed_reference["rmse_dbm"],
        active_run["trajectory"],
    )
    budget = comparison.waypoints_to_match or comparison.trajectory[-1][0]
    scenario = campaign_result.scenario
    lattice = snake_order(waypoint_grid(scenario.flight_volume))
    mission = plan_batch_mission(lattice[:budget], uav_name="UAV-trunc")
    truncated = run_campaign(scenario=scenario, mission=mission)
    model, vocabulary = _filtered_fit(
        REMDataset.from_samples(list(truncated.log)), budget
    )
    rmse = ground_truth_map_rmse(
        model,
        vocabulary,
        scenario.environment,
        fixed_reference["eval_macs"],
        probes,
        fallback_dbm=truncated.log.mean_rss_dbm(),
        truth=fixed_reference["truth"],
    )
    active_at_budget = min(
        rmse_ for waypoints, rmse_ in comparison.trajectory if waypoints <= budget
    )
    _RECORD["truncated_control"] = {
        "waypoints": budget,
        "rmse_dbm": rmse,
        "active_rmse_dbm_at_budget": active_at_budget,
    }
    print(
        f"\ntruncated lattice @ {budget} waypoints -> {rmse:.3f} dB vs "
        f"active {active_at_budget:.3f} dB"
    )
    if not QUICK:
        assert active_at_budget <= rmse + 0.25, (
            "uncertainty-driven selection did not beat a lattice prefix"
        )


def test_emit_perf_record(active_run):
    """Write BENCH_active_sampling.json (runs last: depends on the rest)."""
    result = active_run["result"]
    _RECORD["scenario"] = "condo"
    _RECORD["budget_waypoints"] = BUDGET
    _RECORD["seed_waypoints"] = SEED_WAYPOINTS
    _RECORD["batch_size"] = BATCH
    _RECORD["rounds"] = len(result.rounds)
    _RECORD["total_samples"] = len(result.log)
    _RECORD["holdout_rmse_trajectory"] = [
        {"waypoints": w, "rmse_dbm": r} for w, r in result.rmse_trajectory()
    ]
    out = Path(__file__).resolve().parent.parent / "BENCH_active_sampling.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
