"""TXT-ENDUR — the §III-A endurance protocol.

Paper: 36 scans over 6 min 12 s hovering at 1 m with 8 TWR anchors,
8-second scan period, ~2 s scans, until erratic behaviour.
"""

from __future__ import annotations

from repro.station import run_endurance_test


def test_endurance_protocol(benchmark):
    """Run the endurance protocol to battery-erratic; check §III-A."""
    result = benchmark.pedantic(run_endurance_test, rounds=1, iterations=1)

    print()
    print(
        f"endurance: {result.scans_completed} scans in {result.minutes_seconds} "
        f"(paper: 36 scans in 6 min 12 s); "
        f"battery at {result.battery_remaining_fraction:.1%}"
    )
    assert 30 <= result.scans_completed <= 42
    assert 330 <= result.time_to_erratic_s <= 420


def test_endurance_scan_interval_sweep(benchmark):
    """Ablation: scan cadence vs endurance (more scans drain faster)."""

    def sweep():
        return {
            interval: run_endurance_test(scan_interval_s=interval)
            for interval in (4.0, 8.0, 16.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for interval, result in sorted(results.items()):
        print(
            f"scan every {interval:4.0f} s -> {result.scans_completed:3d} scans, "
            f"{result.time_to_erratic_s:5.0f} s endurance"
        )
    # Scanning more often must not extend flight time.
    assert (
        results[4.0].time_to_erratic_s
        <= results[16.0].time_to_erratic_s + 20.0
    )
    # More frequent scanning yields more scans per flight.
    assert results[4.0].scans_completed > results[16.0].scans_completed
