"""BENCH-JOBSET — the campaign factory: fan-out speedup and resume.

Times the ``repro.serve.jobset`` subsystem on a real sweep over the
scenario-suite ladder:

* a 24-job grid (2 scenarios × 4 seeds × 3 predictors) built serially
  (``workers=0``) and then from a fresh store with a 4-worker pool —
  the wall-clock ratio is the fan-out speedup.  The speedup floor
  (≥3x at 4 workers) is asserted only when the host actually has ≥4
  cores; the measured ratio and ``cpu_count`` are always recorded;
* artifact equivalence: the parallel store's content hashes must equal
  the serial store's, digest for digest (fan-out changes wall time,
  never bytes);
* interrupted-sweep resume: a sweep aborted roughly half-way through
  (via a progress callback raising ``KeyboardInterrupt``) is re-run
  over the same store; every previously finished job must come back
  as a cache hit (resume hit rate 1.0 on finished work);
* the report stage: tidy rows + grouped predictor-vs-RMSE stats from
  the sidecars of the swept store.

Emits ``BENCH_jobset.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (3-cell grid,
2 workers).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.analysis import artifact_rows, group_stats
from repro.serve import ArtifactStore, JobSetRunner, JobSetSpec, run_jobset

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
WORKERS = 2 if QUICK else 4
#: ``fork`` skips the interpreter re-import per worker where available;
#: the runner default (``spawn``) stays the safe-everywhere choice.
START_METHOD = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"

_RECORD: dict = {
    "quick": QUICK,
    "workers": WORKERS,
    "start_method": START_METHOD,
    "cpu_count": os.cpu_count(),
}

#: Sub-second cells: a tiny active campaign per grid point.
_BASE = {
    "active": {"seed_waypoints": 8, "batch_size": 8, "budget_waypoints": 8},
    "min_samples_per_mac": 2,
    "tune": False,
    "with_uncertainty": False,
}


@pytest.fixture(scope="module")
def jobset():
    """The sweep grid: 24 jobs full, 3 in the CI smoke configuration."""
    if QUICK:
        spec = JobSetSpec(
            scenarios=("condo",),
            seeds=(1,),
            predictors=("knn", "idw", "baseline"),
            acquisitions=("active",),
            resolutions=(0.8,),
            base=_BASE,
        )
    else:
        spec = JobSetSpec(
            scenarios=("condo", "generated:room-grid?floors=1&seed=5"),
            seeds=(1, 2, 3, 4),
            predictors=("knn", "idw", "baseline"),
            acquisitions=("active",),
            resolutions=(0.5,),
            base=_BASE,
        )
    _RECORD["n_jobs"] = spec.count
    _RECORD["jobset_digest"] = spec.digest()
    return spec


@pytest.fixture(scope="module")
def serial_store(tmp_path_factory, jobset):
    """The grid built serially; wall time is the parallel baseline."""
    store = ArtifactStore(tmp_path_factory.mktemp("jobset-serial"))
    t0 = time.perf_counter()
    result = run_jobset(jobset, store, workers=0)
    _RECORD["serial_wall_s"] = time.perf_counter() - t0
    assert result.built == jobset.count
    assert result.failed == 0
    return store


def test_parallel_speedup(tmp_path_factory, jobset, serial_store):
    """Fresh-store fan-out at WORKERS workers vs the serial baseline."""
    store = ArtifactStore(tmp_path_factory.mktemp("jobset-parallel"))
    runner = JobSetRunner(store, workers=WORKERS, start_method=START_METHOD)
    t0 = time.perf_counter()
    result = runner.run(jobset)
    parallel_wall_s = time.perf_counter() - t0
    assert result.built == jobset.count
    assert result.failed == 0

    speedup = _RECORD["serial_wall_s"] / parallel_wall_s
    print(
        f"\n{jobset.count} jobs: serial {_RECORD['serial_wall_s']:.1f}s, "
        f"{WORKERS} workers {parallel_wall_s:.1f}s -> {speedup:.2f}x "
        f"(host has {os.cpu_count()} cores)"
    )
    _RECORD["parallel_wall_s"] = parallel_wall_s
    _RECORD["speedup"] = speedup

    # Fan-out must never change the bytes, only the wall clock.
    serial = {r["digest"]: r["content_hash"] for r in serial_store.list()}
    parallel = {r["digest"]: r["content_hash"] for r in store.list()}
    assert serial == parallel, "parallel store differs from serial store"
    _RECORD["stores_byte_identical"] = True

    # The ≥3x acceptance floor needs 4 real cores to be physical; on
    # smaller hosts the honest measured ratio is recorded instead.
    if not QUICK and (os.cpu_count() or 1) >= 4:
        assert speedup >= 3.0, f"expected >=3x at {WORKERS} workers, got {speedup:.2f}x"


def test_interrupt_then_resume_hits_cache(tmp_path_factory, jobset):
    """A sweep killed half-way resumes with 100% hits on finished jobs."""
    store = ArtifactStore(tmp_path_factory.mktemp("jobset-resume"))
    stop_after = max(1, jobset.count // 2)
    finished: list = []

    def interrupt(tick):
        finished.append(tick.digest)
        if tick.done >= stop_after:
            raise KeyboardInterrupt  # what Ctrl-C does to a sweep

    runner = JobSetRunner(
        store, workers=0, progress=interrupt
    )  # inline: the interrupt lands between jobs, like a SIGINT
    with pytest.raises(KeyboardInterrupt):
        runner.run(jobset)
    assert store.count() == stop_after
    _RECORD["interrupted_after"] = stop_after

    result = run_jobset(jobset, store, workers=0)
    cached = {r.digest for r in result.records if r.status == "cached"}
    assert cached == set(finished), "a finished job was rebuilt on resume"
    assert result.built == jobset.count - stop_after
    hit_rate = len(cached) / stop_after
    print(f"\nresume: {len(cached)}/{stop_after} finished jobs were cache hits")
    _RECORD["resume_cache_hits"] = len(cached)
    _RECORD["resume_hit_rate"] = hit_rate
    assert hit_rate == 1.0


def test_report_stage_over_swept_store(serial_store, jobset):
    """Predictor-vs-RMSE aggregation straight from the sidecars."""
    t0 = time.perf_counter()
    rows = artifact_rows(serial_store.list())
    stats = group_stats(rows, by="predictor")
    report_wall_s = time.perf_counter() - t0
    assert len(rows) == jobset.count
    assert set(stats) == set(jobset.predictors)
    for predictor_stats in stats.values():
        assert predictor_stats["n"] == jobset.count / len(jobset.predictors)
    print(
        "\npredictor RMSE (dBm): "
        + ", ".join(f"{k} {s['mean']:.2f}" for k, s in stats.items())
    )
    _RECORD["report_wall_s"] = report_wall_s
    _RECORD["predictor_rmse_dbm"] = {
        key: stats[key]["mean"] for key in stats
    }


def test_emit_perf_record():
    """Write BENCH_jobset.json (runs last: depends on the others)."""
    out = Path(__file__).resolve().parent.parent / "BENCH_jobset.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
