"""FIG6 + TXT-CAMPAIGN — samples per UAV/location and campaign stats.

Regenerates Fig. 6 (samples per UAV and scanned location) and the
§III-A in-text statistics; benchmarks the full 2-UAV campaign.
Shape assertions: UAV A collects more than UAV B; totals and
distinct-MAC/SSID counts land near the paper's.
"""

from __future__ import annotations

import numpy as np
from repro.analysis import campaign_stats, figure6, table
from repro.station import run_campaign


def test_fig6_samples_per_location(benchmark, campaign_result):
    """Reproduce Fig. 6 from the session campaign; bench the analysis."""
    fig6 = benchmark(lambda: figure6(campaign_result))

    print()
    print("=== Fig. 6: samples per UAV and scanned location ===")
    for uav, rows in fig6.per_location.items():
        counts = [count for _, count, _ in sorted(rows)]
        print(f"{uav}: total={sum(counts)}")
        print("  " + " ".join(f"{c:3d}" for c in counts))

    totals = fig6.totals()
    assert totals["UAV-A"] > totals["UAV-B"], "UAV A must out-collect UAV B"
    for uav, rows in fig6.per_location.items():
        assert len(rows) == 36, f"{uav} must have scanned 36 locations"
        counts = [count for _, count, _ in rows]
        assert min(counts) > 5, "every location must yield samples"


def test_campaign_statistics(benchmark, campaign_result):
    """TXT-CAMPAIGN: §III-A statistics, paper values alongside."""
    stats = benchmark(lambda: campaign_stats(campaign_result))

    paper = stats.PAPER
    print()
    print("=== §III-A campaign statistics: measured vs paper ===")
    rows = [
        ["total samples", stats.total_samples, paper["total_samples"]],
        ["samples UAV A", stats.samples_by_uav.get("UAV-A"), paper["samples_uav_a"]],
        ["samples UAV B", stats.samples_by_uav.get("UAV-B"), paper["samples_uav_b"]],
        ["distinct MACs", stats.distinct_macs, paper["distinct_macs"]],
        ["distinct SSIDs", stats.distinct_ssids, paper["distinct_ssids"]],
        ["mean RSS (dBm)", f"{stats.mean_rss_dbm:.1f}", paper["mean_rss_dbm"]],
        [
            "UAV A active (s)",
            f"{stats.active_time_by_uav.get('UAV-A', 0):.0f}",
            paper["active_time_a_s"],
        ],
        [
            "UAV B active (s)",
            f"{stats.active_time_by_uav.get('UAV-B', 0):.0f}",
            paper["active_time_b_s"],
        ],
    ]
    print(table(["metric", "measured", "paper"], rows))

    assert (
        0.8 * paper["total_samples"]
        < stats.total_samples
        < 1.25 * paper["total_samples"]
    )
    assert (
        0.8 * paper["distinct_macs"]
        < stats.distinct_macs
        < 1.2 * paper["distinct_macs"]
    )
    assert abs(stats.mean_rss_dbm - paper["mean_rss_dbm"]) < 6.0


def test_campaign_runtime(benchmark):
    """Benchmark the full sequential 2-UAV campaign end to end."""
    result = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    assert len(result.log) > 2000
