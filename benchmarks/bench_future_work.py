"""Future-work extensions (§IV): Lighthouse, REM density, fleet scaling.

Not paper figures — these quantify the directions the paper names:
Lighthouse positioning replacing UWB, the fundamental density limit of
3-D REMs, and fleet partitioning strategies.
"""

from __future__ import annotations

import numpy as np
from repro.analysis import table
from repro.core import density_sweep
from repro.station import evaluate_partition, partition_waypoints, waypoint_grid
from repro.uwb import (
    LocalizationMode,
    corner_layout,
    evaluate_hovering_accuracy,
    evaluate_lighthouse_hovering,
)


def test_lighthouse_vs_uwb(benchmark, demo_scenario):
    """§IV: 'comparable precision, while requiring less anchors'."""
    volume = demo_scenario.flight_volume
    hover = (1.87, 1.6, 1.0)
    rng = np.random.default_rng(9)

    lighthouse_error = benchmark.pedantic(
        lambda: evaluate_lighthouse_hovering(volume, hover, np.random.default_rng(9)),
        rounds=1,
        iterations=1,
    )
    layout = corner_layout(volume)
    uwb6 = evaluate_hovering_accuracy(
        layout.subset(6), LocalizationMode.TWR, hover, rng
    )
    uwb8 = evaluate_hovering_accuracy(layout, LocalizationMode.TDOA, hover, rng)

    print()
    print("=== localization backends (hovering mean error) ===")
    print(
        table(
            ["backend", "infrastructure", "mean error (cm)"],
            [
                [
                    "Lighthouse (optical)",
                    "2 base stations",
                    f"{lighthouse_error*100:.1f}",
                ],
                ["UWB TWR", "6 anchors", f"{uwb6.mean_error_m*100:.1f}"],
                ["UWB TDoA", "8 anchors", f"{uwb8.mean_error_m*100:.1f}"],
            ],
        )
    )
    assert lighthouse_error < uwb6.mean_error_m


def test_rem_density_curve(benchmark, campaign_result):
    """§IV: RMSE vs number of scan locations (the density limit)."""
    counts = [3, 6, 12, 24, 40, 54]

    result = benchmark.pedantic(
        lambda: density_sweep(campaign_result.log, location_counts=counts, seed=11),
        rounds=1,
        iterations=1,
    )
    locations, rmses = result.as_series()
    print()
    print("=== held-out RMSE vs training scan locations ===")
    for n, r in zip(locations, rmses):
        print(f"  {n:3d} locations -> {r:.3f} dBm")
    knee = result.knee_locations(tolerance_db=0.2)
    print(f"density knee (within 0.2 dB of best): {knee} locations")

    assert rmses[0] > rmses[-1], "sparse sampling must be worse than dense"
    assert knee <= max(counts)


def test_fleet_partition_strategies(benchmark, demo_scenario):
    """Scalability: partition strategies vs the endurance envelope."""
    grid = waypoint_grid(demo_scenario.flight_volume)

    def sweep():
        reports = {}
        for strategy in ("axis-y", "axis-x", "layers-z", "kmeans"):
            for n_uavs in (1, 2, 3):
                plan = partition_waypoints(grid, n_uavs=n_uavs, strategy=strategy)
                reports[(strategy, n_uavs)] = evaluate_partition(plan)
        return reports

    reports = benchmark(sweep)
    print()
    print("=== fleet partitions: duration vs endurance ===")
    rows = []
    for (strategy, n_uavs), report in sorted(reports.items()):
        rows.append(
            [
                strategy,
                n_uavs,
                f"{max(report.per_uav_duration_s):.0f}",
                f"{report.endurance_budget_s:.0f}",
                "yes" if report.feasible else "NO",
            ]
        )
    print(table(["strategy", "uavs", "max flight (s)", "budget (s)", "feasible"], rows))

    # One UAV cannot cover 72 waypoints on one battery — the reason the
    # paper flies a two-UAV fleet sequentially.
    assert not reports[("axis-y", 1)].feasible
    assert reports[("axis-y", 2)].feasible
