"""BENCH-FLEET — wall-clock and map quality of K-drone acquisition.

The fleet path spends each uncertainty-driven batch across K drones
flying at once, so a round's simulated makespan shrinks roughly by K,
and the ``workers`` fan-out (one OS process and one kernel per drone)
converts that into real wall-clock on multi-core hosts.  This bench
flies the same budget with K ∈ {1, 2, 4} and records, per K:

* real wall time of the whole campaign (``workers=K``);
* simulated makespan (the kernel clock summed over rounds);
* RMSE at budget against the simulator's ground-truth mean RSS.

Emits ``BENCH_fleet.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (smaller
budget and probe grid, trend assertions only).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import ground_truth_fields, ground_truth_map_rmse
from repro.core.predictors import KnnRegressor
from repro.station import ActiveSamplingConfig, FleetConfig, run_fleet_campaign

#: The paper's tuned configuration (§III-B best performer).
TUNED = dict(n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0)
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

KS = (1, 2, 4)
BUDGET = 16 if QUICK else 48
SEED_WAYPOINTS = 4 if QUICK else 8
BATCH = 4 if QUICK else 6
PROBE_SHAPE = (4, 4, 2) if QUICK else (6, 5, 3)

_RECORD: dict = {
    "quick": QUICK,
    "budget_waypoints": BUDGET,
    "cpu_count": os.cpu_count(),
    "arms": {},
}


def _scaled_min_samples(waypoints_flown: int) -> int:
    """The §III-B 16-of-72 weak-MAC threshold, scaled to fewer scans."""
    return max(3, round(16 * waypoints_flown / 72))


def _filtered_fit(dataset, waypoints_flown: int):
    """Tuned k-NN on the dataset minus its weak MACs (scaled filter)."""
    counts = dataset.samples_per_mac()
    threshold = _scaled_min_samples(waypoints_flown)
    keep = [
        i
        for i, mac in enumerate(dataset.mac_vocabulary)
        if counts[mac] >= threshold
    ]
    subset = dataset.subset(np.flatnonzero(np.isin(dataset.mac_indices, keep)))
    return KnnRegressor(**TUNED).fit(subset), subset.mac_vocabulary


@pytest.fixture(scope="module")
def fleet_runs(campaign_result):
    """One campaign per K, each timed end to end with ``workers=K``."""
    scenario = campaign_result.scenario
    runs = {}
    for k in KS:
        active = ActiveSamplingConfig(
            seed_waypoints=SEED_WAYPOINTS,
            batch_size=BATCH,
            budget_waypoints=BUDGET,
        )
        start = time.perf_counter()
        result = run_fleet_campaign(
            scenario=scenario,
            fleet=FleetConfig(n_drones=k),
            active=active,
            workers=k if k > 1 else 0,
        )
        runs[k] = {"result": result, "wall_s": time.perf_counter() - start}
    return runs


@pytest.fixture(scope="module")
def truth_scoring(campaign_result, preprocessed):
    """Ground-truth fields cached once, shared by every arm's scoring."""
    scenario = campaign_result.scenario
    probes = scenario.flight_volume.grid(*PROBE_SHAPE, margin=0.2)
    eval_macs = list(preprocessed.dataset.mac_vocabulary)
    truth = ground_truth_fields(scenario.environment, eval_macs, probes)
    return {"probes": probes, "eval_macs": eval_macs, "truth": truth}


def test_every_arm_spends_the_budget(fleet_runs):
    for k, run in fleet_runs.items():
        result = run["result"]
        assert result.stop_reason == "budget", (
            f"K={k} stopped early: {result.stop_reason}"
        )
        assert result.waypoints_flown >= BUDGET
        assert len(result.log) > 0


def test_concurrency_shrinks_the_simulated_makespan(fleet_runs):
    """K drones cut a round's flying time ~K-fold (simulated clock)."""
    makespans = {k: fleet_runs[k]["result"].duration_s for k in KS}
    for k in KS:
        _RECORD["arms"].setdefault(str(k), {})["makespan_s"] = makespans[k]
    print("\nsimulated makespan per K:", makespans)
    assert makespans[2] < makespans[1]
    assert makespans[4] < makespans[2]
    # The K=2 fleet halves every tour; fixed take-off/landing overhead
    # is small next to the leg+scan cadence, so >= 1.5x must survive.
    assert makespans[1] / makespans[2] >= 1.5


def test_workers_convert_makespan_into_wall_clock(fleet_runs):
    """On multi-core hosts the fan-out must show up on a stopwatch."""
    walls = {k: fleet_runs[k]["wall_s"] for k in KS}
    for k in KS:
        _RECORD["arms"].setdefault(str(k), {})["wall_s"] = walls[k]
    speedup = walls[1] / walls[2]
    _RECORD["wall_speedup_k2"] = speedup
    print(f"\nwall per K: {walls}; K=2 speedup {speedup:.2f}x")
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core host: no wall-clock scaling to assert")
    if QUICK:
        # Tiny budgets leave fork/refit overhead visible; ask only for
        # a real improvement, not the full ratio.
        assert walls[2] < walls[1]
    else:
        assert speedup >= 1.5, (
            f"K=2 fleet only {speedup:.2f}x faster on "
            f"{os.cpu_count()} cores"
        )


def test_rmse_at_budget_stays_competitive(fleet_runs, truth_scoring):
    """Splitting the budget across drones must not wreck the map."""
    rmses = {}
    for k, run in fleet_runs.items():
        result = run["result"]
        dataset = result.builder.dataset()
        model, vocabulary = _filtered_fit(dataset, result.waypoints_flown)
        rmses[k] = ground_truth_map_rmse(
            model,
            vocabulary,
            result.scenario.environment,
            truth_scoring["eval_macs"],
            truth_scoring["probes"],
            fallback_dbm=float(dataset.rssi_dbm.mean()),
            truth=truth_scoring["truth"],
        )
        arm = _RECORD["arms"].setdefault(str(k), {})
        arm["ground_truth_rmse_dbm"] = rmses[k]
        arm["holdout_rmse_dbm"] = result.final_rmse_dbm
    print("\nground-truth RMSE at budget per K:", rmses)
    assert all(np.isfinite(r) for r in rmses.values())
    # Same budget, different spatial split: quality must stay in the
    # same band as the solo campaign, not degrade with K.
    for k in KS[1:]:
        assert rmses[k] <= rmses[1] + 3.0, (
            f"K={k} map is {rmses[k] - rmses[1]:.2f} dB worse than solo"
        )


def test_emit_perf_record(fleet_runs):
    """Write BENCH_fleet.json (runs last: depends on the rest)."""
    for k, run in fleet_runs.items():
        result = run["result"]
        arm = _RECORD["arms"].setdefault(str(k), {})
        arm["rounds"] = len(result.rounds)
        arm["waypoints_flown"] = result.waypoints_flown
        arm["total_samples"] = len(result.log)
        arm["dropped_waypoints"] = int(
            sum(r.dropped_waypoints for r in result.rounds)
        )
    _RECORD["scenario"] = "condo"
    _RECORD["seed_waypoints"] = SEED_WAYPOINTS
    _RECORD["batch_size"] = BATCH
    out = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
