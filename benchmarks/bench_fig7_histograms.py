"""FIG7 — histograms of samples per 0.5 m bin along x and y.

Regenerates Fig. 7 and asserts the paper's spatial trends: sample
counts increase with increasing x and decrease with increasing y
(toward/away from the building center).
"""

from __future__ import annotations

from repro.analysis import figure7, render_figure7


def test_fig7_histograms(benchmark, campaign_result):
    """Reproduce Fig. 7 from the session campaign; bench the binning."""
    fig7 = benchmark(lambda: figure7(campaign_result, bin_width_m=0.5))

    print()
    print("=== Fig. 7: samples per 0.5 m bin ===")
    print(render_figure7(fig7))

    assert fig7.increasing_in_x(), "sample mass must rise toward +x"
    assert fig7.decreasing_in_y(), "sample mass must fall toward +y"
    assert fig7.x_histogram.total == len(campaign_result.log)
    assert fig7.y_histogram.total == len(campaign_result.log)


def test_fig7_bin_width_sensitivity(benchmark, campaign_result):
    """The trend must not be an artifact of the 0.5 m bin choice.

    Bins wider than the waypoint-column spacing (~0.9 m in y) alias
    whole columns into shared bins, so the sweep stays at or below it.
    """

    def sweep():
        return {
            width: figure7(campaign_result, bin_width_m=width)
            for width in (0.25, 0.4, 0.5, 0.75)
        }

    results = benchmark(sweep)
    for width, fig7 in results.items():
        assert fig7.increasing_in_x(), f"x-trend lost at bin width {width}"
        assert fig7.decreasing_in_y(), f"y-trend lost at bin width {width}"
