"""FIG8 + TXT-PREPROC — RMSE of every RSS predictor (paper Fig. 8).

Regenerates the full model comparison on the campaign dataset:
baseline (mean per MAC), the k-NN variants, the neural network, and
the kriging extension.  Shape assertions (the paper's ladder):

* the baseline is the worst of the evaluated models;
* the scaled-one-hot k-NN (k=16) is the best of the paper's models;
* the neural network lands between them;
* preprocessing retains ~95 % of samples (paper: 2565 of 2696).
"""

from __future__ import annotations

import pytest

from repro.analysis import PAPER_FIG8_RMSE, figure8, render_figure8
from repro.core.predictors import KnnRegressor, rmse
from repro.core.preprocessing import preprocess


@pytest.fixture(scope="module")
def fig8_result(campaign_result):
    return figure8(campaign_result.log)


def test_fig8_model_comparison(benchmark, campaign_result, preprocessed, fig8_result):
    """Reproduce Fig. 8; benchmark the winning model's fit+predict."""

    def fit_and_score():
        model = KnnRegressor(
            n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0
        )
        model.fit(preprocessed.train)
        return rmse(preprocessed.test.rssi_dbm, model.predict(preprocessed.test))

    best_rmse = benchmark(fit_and_score)

    print()
    print("=== Fig. 8: RMSE of prediction for different models ===")
    print(render_figure8(fig8_result))

    r = fig8_result.rmse_dbm
    assert fig8_result.ladder_matches_paper(), f"ladder mismatch: {r}"
    paper_models = {k: v for k, v in r.items() if k != "ordinary-kriging"}
    assert max(paper_models, key=paper_models.get) == "baseline-mean-per-mac"
    assert min(paper_models, key=paper_models.get) == "knn-onehot3-k16"
    # Magnitudes within ~1.5 dB of the paper's values.
    baseline_gap = r["baseline-mean-per-mac"] - PAPER_FIG8_RMSE["baseline-mean-per-mac"]
    assert abs(baseline_gap) < 1.5
    assert abs(r["knn-onehot3-k16"] - PAPER_FIG8_RMSE["knn-onehot3-k16"]) < 1.5
    assert best_rmse < r["baseline-mean-per-mac"]


def test_preprocessing_stats(benchmark, campaign_result):
    """TXT-PREPROC: the <16-samples-per-MAC filter (paper: 131 dropped)."""
    result = benchmark(lambda: preprocess(campaign_result.log))

    total = len(campaign_result.log)
    print()
    print(
        f"retained {result.retained_samples}/{total} samples "
        f"({result.dropped_samples} dropped across {result.dropped_macs} rare MACs); "
        f"paper: 2565/2696 (131 dropped)"
    )
    drop_fraction = result.dropped_samples / total
    assert 0.005 < drop_fraction < 0.12
    assert result.dropped_macs > 0


def test_fig8_grid_search(benchmark, preprocessed):
    """The §III-B hyper-parameter grid search (weights/metric/k)."""
    from repro.core.predictors import ParamGrid, grid_search

    grid = ParamGrid(
        n_neighbors=[3, 16], weights=["uniform", "distance"], p=[1.0, 2.0]
    )

    result = benchmark.pedantic(
        lambda: grid_search(KnnRegressor(), preprocessed.train, grid, k_folds=3),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== grid search ranking (CV RMSE) ===")
    for cv in result.ranking():
        print(f"  {cv.params} -> {cv.mean_rmse:.4f} ± {cv.std_rmse:.4f}")
    # Distance weighting must win over uniform, as in the paper.
    assert result.best_params["weights"] == "distance"
