"""ABL-FIRMWARE — the §II-C firmware modifications, one by one.

The paper's three changes (bigger CRTP TX queue, longer commander
watchdog, the position-feedback task) are each load-bearing: this bench
flies a short mission under each configuration and shows what breaks.
"""

from __future__ import annotations

import pytest

from repro.analysis import table
from repro.station import (
    CampaignConfig,
    Mission,
    WaypointPlan,
    plan_demo_mission,
    run_campaign,
)
from repro.uav import FirmwareConfig, FlightState


def _short_mission(scenario, n_waypoints=4):
    full = plan_demo_mission(scenario)
    conf, plan = full.assignments[0]
    mission = Mission()
    mission.add(conf, WaypointPlan(waypoints=plan.waypoints[:n_waypoints]))
    return mission


FIRMWARES = {
    "stock-2021.06": FirmwareConfig.stock_2021_06(),
    "queue-only": FirmwareConfig(
        crtp_tx_queue_size=256,
        commander_watchdog_timeout_s=2.0,
        feedback_task_enabled=False,
    ),
    "watchdog-only": FirmwareConfig(
        crtp_tx_queue_size=16,
        commander_watchdog_timeout_s=10.0,
        feedback_task_enabled=False,
    ),
    "watchdog+queue": FirmwareConfig(
        crtp_tx_queue_size=256,
        commander_watchdog_timeout_s=10.0,
        feedback_task_enabled=False,
    ),
    "paper-modified": FirmwareConfig.paper_modified(),
}


@pytest.fixture(scope="module")
def firmware_outcomes(demo_scenario):
    outcomes = {}
    for label, firmware in FIRMWARES.items():
        mission = _short_mission(demo_scenario)
        result = run_campaign(
            scenario=demo_scenario,
            mission=mission,
            config=CampaignConfig(firmware=firmware),
        )
        outcomes[label] = result.reports[0]
    return outcomes


def test_firmware_ablation(benchmark, demo_scenario, firmware_outcomes):
    """Fly a 4-waypoint mission per firmware; bench the paper config."""
    mission = _short_mission(demo_scenario)
    benchmark.pedantic(
        lambda: run_campaign(
            scenario=demo_scenario,
            mission=mission,
            config=CampaignConfig(firmware=FirmwareConfig.paper_modified()),
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print("=== firmware ablation (4-waypoint mission) ===")
    rows = []
    for label, report in firmware_outcomes.items():
        rows.append(
            [
                label,
                report.final_state.name,
                report.waypoints_visited,
                report.samples_collected,
                report.abort_reason or "-",
            ]
        )
    print(table(["firmware", "state", "visited", "samples", "abort"], rows))

    # Stock firmware: watchdog kills the flight during the first scan.
    assert firmware_outcomes["stock-2021.06"].final_state is FlightState.CRASHED
    # A longer watchdog alone still loses scan results to queue overflow
    # (but keeps the UAV alive through the mission).
    watchdog_only = firmware_outcomes["watchdog-only"]
    assert watchdog_only.final_state is not FlightState.CRASHED
    paper = firmware_outcomes["paper-modified"]
    assert watchdog_only.samples_collected < paper.samples_collected
    # The full modification set completes cleanly.
    assert paper.final_state is FlightState.LANDED
    assert paper.waypoints_visited == 4
    assert not paper.aborted
