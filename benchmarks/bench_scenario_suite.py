"""BENCH-SCENARIO-SUITE — throughput across a ladder of generated buildings.

PRs 1-3 measured the batched REM/link-budget engines at a *point*: the
hand-built demo condo.  The procedural generator turns that point into
a curve — this bench sweeps a ladder of generated buildings (1 -> 8
floors, tens -> hundreds of walls, a handful -> dozens of APs) and
records, per rung:

* **build** — wall time of :func:`repro.radio.generate_building`
  (plan + population + environment assembly);
* **ground truth** — one batched ``mean_rss_dbm_many`` pass over a
  dense probe grid (the field every active-sampling comparison scores
  against), in points*APs per second;
* **campaign** — an 8-waypoint batch mission flown through the full
  stack (client, radio protocol, channel-sweep scanner), in samples
  per second.

Emits ``BENCH_scenario_suite.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (the three
smallest rungs, coarser probes).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.radio import BuildingSpec, generate_building
from repro.station import plan_batch_mission, run_campaign

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
PROBE_SHAPE = (4, 4, 2) if QUICK else (8, 6, 4)

#: The ladder: name -> spec, ordered by size (floors, walls and APs all
#: grow down the list; the suite asserts the wall count is monotone).
LADDER = [
    (
        "xs-open-hall",
        BuildingSpec(
            template="open-plan",
            floors=1,
            width_m=12.0,
            depth_m=9.0,
            palette="commercial",
            ap_policy="ceiling-grid",
            ap_spacing_m=8.0,
            seed=101,
        ),
    ),
    (
        "s-room-grid",
        BuildingSpec(
            template="room-grid",
            floors=1,
            width_m=14.0,
            depth_m=10.0,
            seed=102,
        ),
    ),
    (
        "m-corridor",
        BuildingSpec(
            template="corridor-spine",
            floors=2,
            width_m=18.0,
            depth_m=12.0,
            palette="commercial",
            ap_policy="ceiling-grid",
            ap_spacing_m=6.0,
            seed=103,
        ),
    ),
    (
        "l-room-grid",
        BuildingSpec(
            template="room-grid",
            floors=3,
            width_m=20.0,
            depth_m=14.0,
            clutter_per_floor=2,
            seed=104,
        ),
    ),
    (
        "xl-corridor",
        BuildingSpec(
            template="corridor-spine",
            floors=5,
            width_m=24.0,
            depth_m=15.0,
            palette="commercial",
            ap_policy="per-room",
            ap_room_probability=0.6,
            clutter_per_floor=2,
            seed=105,
        ),
    ),
    (
        "xxl-tower",
        BuildingSpec(
            template="room-grid",
            floors=8,
            width_m=22.0,
            depth_m=16.0,
            room_m=5.5,
            palette="industrial",
            ap_policy="per-room",
            ap_room_probability=0.6,
            seed=106,
        ),
    ),
]
RUNGS = LADDER[:3] if QUICK else LADDER

_RECORD: dict = {"quick": QUICK, "probe_shape": list(PROBE_SHAPE), "rungs": []}


@pytest.mark.parametrize(("name", "spec"), RUNGS)
def test_ladder_rung(name, spec):
    """Build, score and fly one rung; append its timings to the record."""
    t0 = time.perf_counter()
    scenario = generate_building(spec)
    build_s = time.perf_counter() - t0

    environment = scenario.environment
    macs = [ap.mac for ap in environment.access_points]
    probes = scenario.flight_volume.grid(*PROBE_SHAPE, margin=0.2)
    environment.clear_wall_cache()
    t0 = time.perf_counter()
    truth = environment.mean_rss_dbm_many(macs, probes)
    truth_s = time.perf_counter() - t0
    assert truth.shape == (len(macs), len(probes))
    assert np.isfinite(truth).all()

    waypoints = scenario.flight_volume.grid(2, 2, 2, margin=0.3)
    mission = plan_batch_mission(waypoints)
    t0 = time.perf_counter()
    campaign = run_campaign(scenario=scenario, mission=mission)
    campaign_s = time.perf_counter() - t0
    assert campaign.total_samples > 0, "generated building produced no samples"

    rung = {
        "name": name,
        "scenario": spec.to_name(),
        "floors": spec.floors,
        "n_walls": len(environment.walls),
        "n_aps": len(macs),
        "build_s": build_s,
        "ground_truth_s": truth_s,
        "ground_truth_points": len(probes),
        "ground_truth_cells_per_s": len(macs) * len(probes) / truth_s,
        "campaign_s": campaign_s,
        "campaign_samples": campaign.total_samples,
        "campaign_samples_per_s": campaign.total_samples / campaign_s,
    }
    _RECORD["rungs"].append(rung)
    print(
        f"\n{name}: {rung['n_walls']} walls, {rung['n_aps']} APs, "
        f"build {build_s * 1e3:.1f} ms, truth {truth_s * 1e3:.1f} ms, "
        f"campaign {campaign_s:.2f} s ({rung['campaign_samples']} samples)"
    )


def test_ladder_is_a_ladder():
    """The rungs must actually grow (the sweep is a scaling curve)."""
    assert len(_RECORD["rungs"]) == len(RUNGS)
    walls = [rung["n_walls"] for rung in _RECORD["rungs"]]
    assert walls == sorted(walls), f"wall counts not monotone: {walls}"
    floors = [rung["floors"] for rung in _RECORD["rungs"]]
    assert floors[0] < floors[-1]


def test_emit_perf_record():
    """Write BENCH_scenario_suite.json (runs last: depends on the others)."""
    out = Path(__file__).resolve().parent.parent / "BENCH_scenario_suite.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
