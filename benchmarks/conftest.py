"""Shared fixtures for the benchmark suite.

Each bench regenerates one of the paper's figures/tables and prints the
reproduced series (run with ``-s`` to see them alongside the timings).
The expensive artifacts (the full campaign) are session-scoped.
"""

from __future__ import annotations

import pytest

from repro.core.preprocessing import preprocess
from repro.radio import build_demo_scenario
from repro.station import run_campaign


@pytest.fixture(scope="session")
def demo_scenario():
    """The default demo scenario."""
    return build_demo_scenario()


@pytest.fixture(scope="session")
def campaign_result():
    """One full 2-UAV campaign shared by the figure benches."""
    return run_campaign()


@pytest.fixture(scope="session")
def preprocessed(campaign_result):
    """Preprocessed campaign data."""
    return preprocess(campaign_result.log)
