"""BENCH-SERVICE — the job/artifact/serving path end to end.

Times the "build once, persist, serve many" surface added by
``repro.serve``:

* one real ``run_job`` build (spec → campaign → REM + uncertainty),
  then the artifact-store round trip: save wall time, load wall time
  and the cache-hit latency of a second ``run_job`` (which must be
  orders of magnitude below the build);
* served queries/sec through ``RemService`` — a mixed
  query/strongest-AP/coverage workload — single-threaded and from a
  thread pool, with every served answer asserted ≡ the direct
  ``RadioEnvironmentMap`` reduction at 1e-9;
* HTTP round trips/sec against the stdlib front end.

Emits ``BENCH_service.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.serve import (
    ArtifactStore,
    CoverageRequest,
    QueryRequest,
    RemJobSpec,
    RemService,
    StrongestApRequest,
    create_server,
    run_job,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
BUDGET_WAYPOINTS = 8 if QUICK else 24
N_REQUESTS = 120 if QUICK else 600
N_HTTP = 40 if QUICK else 200
POINTS_PER_QUERY = 32

_RECORD: dict = {"quick": QUICK}


@pytest.fixture(scope="module")
def spec():
    return RemJobSpec(
        acquisition="active",
        active={
            "seed_waypoints": min(8, BUDGET_WAYPOINTS),
            "batch_size": 8,
            "budget_waypoints": BUDGET_WAYPOINTS,
        },
        tune=False,
        min_samples_per_mac=2 if QUICK else 4,
        resolution_m=0.5 if QUICK else 0.25,
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return ArtifactStore(tmp_path_factory.mktemp("bench-artifacts"))


@pytest.fixture(scope="module")
def artifact(spec, store):
    t0 = time.perf_counter()
    built = run_job(spec, store)
    _RECORD["build_wall_s"] = time.perf_counter() - t0
    _RECORD["budget_waypoints"] = BUDGET_WAYPOINTS
    _RECORD["n_macs"] = len(built.rem.macs)
    _RECORD["rem_shape"] = list(built.rem.grid.shape)
    return built


def make_requests(artifact, n, seed=7):
    """A deterministic mixed request stream."""
    rng = np.random.default_rng(seed)
    lo = np.asarray(artifact.rem.grid.volume.min_corner)
    hi = np.asarray(artifact.rem.grid.volume.max_corner)
    requests = []
    for i in range(n):
        kind = i % 3
        if kind == 0:
            points = rng.uniform(lo, hi, size=(POINTS_PER_QUERY, 3))
            requests.append(QueryRequest(artifact.digest, points))
        elif kind == 1:
            points = rng.uniform(lo, hi, size=(POINTS_PER_QUERY, 3))
            requests.append(StrongestApRequest(artifact.digest, points))
        else:
            requests.append(
                CoverageRequest(artifact.digest, -80.0 + (i % 20))
            )
    return requests


def test_store_round_trip_wall_time(artifact, store, spec):
    """Artifact save/load and the run_job cache-hit latency."""
    # Save into a throwaway root so the timing is a cold write.
    t0 = time.perf_counter()
    path = ArtifactStore(store.root / "rewrite").save(artifact)
    save_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    loaded = store.load(artifact.digest)
    load_s = time.perf_counter() - t0
    assert loaded.content_hash() == artifact.content_hash()

    t0 = time.perf_counter()
    hit = run_job(spec, store)
    cache_hit_s = time.perf_counter() - t0
    assert hit.cache_hit

    size_kib = path.stat().st_size / 1024.0
    print(
        f"\nsave {save_s * 1e3:.1f} ms, load {load_s * 1e3:.1f} ms, "
        f"cache-hit run_job {cache_hit_s * 1e3:.1f} ms "
        f"({size_kib:.0f} KiB vs build {_RECORD['build_wall_s']:.2f} s)"
    )
    _RECORD["artifact_save_s"] = save_s
    _RECORD["artifact_load_s"] = load_s
    _RECORD["cache_hit_run_job_s"] = cache_hit_s
    _RECORD["artifact_size_kib"] = size_kib
    assert cache_hit_s < _RECORD["build_wall_s"], "cache hit slower than build"


def test_single_thread_queries_per_s(artifact, store):
    """Served throughput, one thread, answers pinned to the direct REM."""
    service = RemService(store, capacity=2)
    requests = make_requests(artifact, N_REQUESTS)
    t0 = time.perf_counter()
    responses = [service.handle(r) for r in requests]
    elapsed = time.perf_counter() - t0

    # Equivalence gate on a sample of the query answers.
    worst = 0.0
    for request, response in list(zip(requests, responses))[:30]:
        if isinstance(request, QueryRequest):
            direct = artifact.rem.query_many(request.points)
            worst = max(worst, float(np.abs(response.values - direct).max()))
    assert worst < 1e-9, f"served/direct disagree by {worst:.2e} dB"

    rate = len(requests) / elapsed
    print(f"\n{rate:.0f} served requests/s single-threaded")
    _RECORD["single_thread_requests_per_s"] = rate
    _RECORD["n_requests"] = len(requests)
    _RECORD["max_served_vs_direct_db"] = worst


def test_multi_thread_queries_per_s(artifact, store):
    """Same workload through a thread pool (the LRU under contention)."""
    service = RemService(store, capacity=2)
    requests = make_requests(artifact, N_REQUESTS)
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=4) as pool:
        responses = list(pool.map(service.handle, requests))
    elapsed = time.perf_counter() - t0
    assert len(responses) == len(requests)
    rate = len(requests) / elapsed
    print(f"\n{rate:.0f} served requests/s with 4 workers")
    _RECORD["multi_thread_requests_per_s"] = rate
    _RECORD["multi_thread_workers"] = 4


def test_http_round_trips_per_s(artifact, store):
    """End-to-end JSON/HTTP latency through the stdlib front end."""
    service = RemService(store, capacity=2)
    server = create_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        rng = np.random.default_rng(11)
        lo = np.asarray(artifact.rem.grid.volume.min_corner)
        hi = np.asarray(artifact.rem.grid.volume.max_corner)
        url = f"http://{host}:{port}/v1/artifacts/{artifact.digest}/query"
        t0 = time.perf_counter()
        for _ in range(N_HTTP):
            body = json.dumps(
                {
                    "type": "query",
                    "points": rng.uniform(lo, hi, size=(8, 3)).tolist(),
                }
            ).encode()
            request = urllib.request.Request(url, data=body, method="POST")
            with urllib.request.urlopen(request, timeout=30) as resp:
                payload = json.load(resp)
            assert len(payload["values"]) == 8
        elapsed = time.perf_counter() - t0
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    rate = N_HTTP / elapsed
    print(f"\n{rate:.0f} HTTP round trips/s")
    _RECORD["http_round_trips_per_s"] = rate
    _RECORD["n_http_requests"] = N_HTTP


def test_emit_perf_record():
    """Write BENCH_service.json (runs last: depends on the others)."""
    out = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
