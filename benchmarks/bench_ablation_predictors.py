"""ABL-PREDICT — predictor design-space sweeps beyond Fig. 8.

Sweeps the knobs the paper grid-searched (k, one-hot scale, weighting)
plus the kriging extension, quantifying each design choice's effect.
"""

from __future__ import annotations

from repro.analysis import bar_chart
from repro.core.predictors import (
    IdwRegressor,
    KnnRegressor,
    MeanPerMacBaseline,
    OrdinaryKrigingRegressor,
    rmse,
)


def _score(model, preprocessed):
    model.fit(preprocessed.train)
    return rmse(preprocessed.test.rssi_dbm, model.predict(preprocessed.test))


def test_k_sweep(benchmark, preprocessed):
    """RMSE vs neighbor count for the scaled-one-hot k-NN."""

    def sweep():
        return {
            k: _score(KnnRegressor(n_neighbors=k, onehot_scale=3.0), preprocessed)
            for k in (1, 2, 4, 8, 16, 32, 64)
        }

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("=== RMSE vs k (one-hot x3, distance weights) ===")
    print(bar_chart({f"k={k}": v for k, v in scores.items()}, unit=" dBm", precision=3))
    # Averaging must beat memorization on noisy RSS: k=16 < k=1.
    assert scores[16] < scores[1]
    baseline = _score(MeanPerMacBaseline(), preprocessed)
    assert scores[16] < baseline


def test_onehot_scale_sweep(benchmark, preprocessed):
    """RMSE vs one-hot scale (the paper's factor-3 design choice)."""

    def sweep():
        return {
            scale: _score(
                KnnRegressor(n_neighbors=16, onehot_scale=scale), preprocessed
            )
            for scale in (0.0, 0.5, 1.0, 3.0, 10.0)
        }

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("=== RMSE vs one-hot scale (k=16) ===")
    print(
        bar_chart({f"x{s:g}": v for s, v in scores.items()}, unit=" dBm", precision=3)
    )
    # Mixing MACs freely (scale 0) must hurt badly.
    assert scores[0.0] > scores[3.0]
    # Paper's factor 3 is near-optimal: within 0.25 dB of the sweep's best.
    assert scores[3.0] < min(scores.values()) + 0.25


def test_weighting_ablation(benchmark, preprocessed):
    """Uniform vs distance weighting (grid-search outcome in §III-B)."""

    def sweep():
        return {
            weights: _score(
                KnnRegressor(n_neighbors=16, onehot_scale=3.0, weights=weights),
                preprocessed,
            )
            for weights in ("uniform", "distance")
        }

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("=== RMSE by weighting scheme ===")
    print(bar_chart(scores, unit=" dBm", precision=3))
    assert scores["distance"] <= scores["uniform"] + 0.1


def test_interpolator_family(benchmark, preprocessed):
    """The extension interpolators vs the paper's best k-NN."""

    def run():
        return {
            "ordinary-kriging": _score(
                OrdinaryKrigingRegressor(n_neighbors=16), preprocessed
            ),
            "idw-p2": _score(IdwRegressor(power=2.0), preprocessed),
            "idw-p4": _score(IdwRegressor(power=4.0), preprocessed),
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    knn_rmse = _score(KnnRegressor(n_neighbors=16, onehot_scale=3.0), preprocessed)
    baseline = _score(MeanPerMacBaseline(), preprocessed)
    scores["knn-onehot3-k16"] = knn_rmse
    scores["baseline"] = baseline
    print()
    print("=== interpolator family (held-out RMSE) ===")
    print(bar_chart(scores, unit=" dBm", precision=3))
    assert scores["ordinary-kriging"] < baseline
    assert scores["idw-p2"] < baseline
    # Kriging should be competitive with the best k-NN (within 0.5 dB).
    assert abs(scores["ordinary-kriging"] - knn_rmse) < 0.5
