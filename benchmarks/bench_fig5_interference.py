"""FIG5 — Crazyradio self-interference (paper Fig. 5).

Regenerates the mean detected-APs-per-channel table for the radio off
and each of the six Crazyradio frequencies, and benchmarks the scan
path under interference.  Shape assertions: the radio-off setting
detects strictly more APs than any radio-on setting (ABL-RADIO).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import FIG5_FREQUENCIES_MHZ, figure5, render_figure5
from repro.link import Crazyradio, RadioConfig
from repro.wifi import ChannelSweepScanner


@pytest.fixture(scope="module")
def fig5_result(demo_scenario):
    return figure5(scenario=demo_scenario, scans_per_setting=3)


def test_fig5_series(benchmark, demo_scenario, fig5_result):
    """Reproduce Fig. 5 and benchmark one interference-laden scan."""
    environment = demo_scenario.environment
    radio = Crazyradio(environment, RadioConfig(freq_mhz=2450.0))
    radio.turn_on()
    scanner = ChannelSweepScanner(environment)
    rng = np.random.default_rng(7)
    position = demo_scenario.flight_volume.center

    benchmark(lambda: scanner.scan(position, rng, duration_s=3.0))
    radio.turn_off()

    print()
    print("=== Fig. 5: mean APs per channel (3 scans per setting) ===")
    print(render_figure5(fig5_result))

    off_total = fig5_result.total("off")
    for freq in FIG5_FREQUENCIES_MHZ:
        on_total = fig5_result.total(f"{freq:.0f} MHz")
        assert on_total < off_total, (
            f"radio at {freq} MHz should degrade scans ({on_total} vs {off_total})"
        )


def test_fig5_interference_floor_sweep(benchmark, demo_scenario):
    """ABL-RADIO: per-channel floor rise across the Crazyradio range."""
    environment = demo_scenario.environment
    radio = Crazyradio(environment, RadioConfig())

    def sweep():
        rows = []
        for freq in FIG5_FREQUENCIES_MHZ:
            radio.set_frequency(freq)
            radio.turn_on()
            floors = [environment.interference_floor_dbm(c) for c in range(1, 14)]
            radio.turn_off()
            rows.append((freq, floors))
        return rows

    rows = benchmark(sweep)
    thermal = environment.thermal_floor_dbm()
    print()
    print("=== effective noise floor rise (dB over thermal) per channel ===")
    for freq, floors in rows:
        rises = [f - thermal for f in floors]
        print(
            f"{freq:6.0f} MHz: "
            + " ".join(f"{r:5.1f}" for r in rises)
        )
        assert min(rises) > 0.0
