"""BENCH-ONLINE-REFIT — incremental refits and the sweep scenario cache.

Times the two halves of the incremental-refit engine:

* the online builder's ``partial_fit`` path: the 72-waypoint campaign
  is replayed scan by scan through two :class:`OnlineRemBuilder`
  instances — one routing cadence refits through the incremental path,
  one forcing the legacy from-scratch refit — and the per-round refit
  walls (``OnlineSnapshot.refit_wall_s``) are compared.  The cumulative
  refit-time speedup floor (≥3x) is asserted on hosts with ≥4 cores;
  the holdout-RMSE trajectories must agree to 1e-9 regardless (the
  incremental path changes wall time, never numbers);
* the sweep-wide :class:`~repro.radio.scenario_cache.ScenarioCache`: a
  predictor grid sharing a handful of ``(scenario, seed)`` worlds is
  swept serially (``workers=0``) with the cache disabled
  (``REPRO_SCENARIO_CACHE=0``) and then enabled from a cold cache —
  cells differing only in predictor reuse one flown campaign, and the
  wall ratio is the cache speedup (≥2x floor, same cpu gate).  The two
  stores must be byte-identical digest for digest.

Emits ``BENCH_online_refit.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (synthetic scan
sequence, 2-cell sweep).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.radio.scenario_cache import default_cache
from repro.serve import ArtifactStore, JobSetSpec, run_jobset
from repro.station.online import OnlineRemBuilder
from repro.wifi import ScanRecord

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

_RECORD: dict = {
    "quick": QUICK,
    "cpu_count": os.cpu_count(),
}

#: Sub-second sweep cells: a tiny active campaign per grid point.
_BASE = {
    "active": {"seed_waypoints": 8, "batch_size": 8, "budget_waypoints": 8},
    "min_samples_per_mac": 2,
    "tune": False,
    "with_uncertainty": False,
}


@pytest.fixture(scope="module")
def scan_sequence(request):
    """Position-annotated scans to replay: the real 72-waypoint campaign
    (full mode) or a synthetic 24-scan walk (CI smoke)."""
    if QUICK:
        rng = np.random.default_rng(5)
        macs = [f"aa:aa:aa:aa:aa:{i:02x}" for i in range(6)]
        sequence = []
        for _ in range(24):
            position = (3.0 * rng.random(), 2.5 * rng.random(), 1.0)
            records = [
                ScanRecord(
                    ssid=f"net{j}",
                    rssi_dbm=int(-60 - 2 * j - 3 * position[0] + rng.normal(0, 1)),
                    mac=mac,
                    channel=6,
                )
                for j, mac in enumerate(macs)
            ]
            sequence.append((position, records))
        return sequence
    campaign = request.getfixturevalue("campaign_result")
    by_scan: dict = {}
    for s in campaign.log:
        by_scan.setdefault((s.uav_name, s.waypoint_index), []).append(s)
    sequence = []
    for key in sorted(by_scan):
        samples = by_scan[key]
        records = [
            ScanRecord(
                ssid=s.ssid, rssi_dbm=s.rssi_dbm, mac=s.mac, channel=s.channel
            )
            for s in samples
        ]
        sequence.append((samples[0].position, records))
    return sequence


def _replay(sequence, incremental):
    # Cadence 1 — refit after every scan — is the fully-online
    # configuration the subsystem exists for, and the worst case for
    # the from-scratch baseline (every refit rebuilds the whole
    # growing dataset).
    builder = OnlineRemBuilder(
        refit_every_scans=1,
        holdout_fraction=0.25,
        seed=3,
        incremental=incremental,
    )
    t0 = time.perf_counter()
    for position, records in sequence:
        builder.add_scan(position, records)
    builder.refit_now()
    return builder, time.perf_counter() - t0


def test_incremental_refit_speedup(scan_sequence):
    """partial_fit vs from-scratch refits over the same scan stream."""
    # One untimed full replay first: the large-array predict path
    # (holdout scoring) must be warm before either timed run, or the
    # first one pays the allocator/numpy warm-up and skews the ratio.
    _replay(scan_sequence, incremental=False)
    fast, fast_wall = _replay(scan_sequence, incremental=True)
    slow, slow_wall = _replay(scan_sequence, incremental=False)

    fast_refit_s = sum(s.refit_wall_s for s in fast.history)
    slow_refit_s = sum(s.refit_wall_s for s in slow.history)
    speedup = slow_refit_s / fast_refit_s
    print(
        f"\n{len(fast.history)} refits over {fast.scans_ingested} scans: "
        f"scratch {slow_refit_s * 1e3:.1f}ms, incremental "
        f"{fast_refit_s * 1e3:.1f}ms -> {speedup:.2f}x "
        f"(host has {os.cpu_count()} cores)"
    )
    _RECORD["refits"] = len(fast.history)
    _RECORD["scans"] = fast.scans_ingested
    _RECORD["refit_trajectory"] = {
        "incremental_wall_s": [round(s.refit_wall_s, 6) for s in fast.history],
        "scratch_wall_s": [round(s.refit_wall_s, 6) for s in slow.history],
    }
    _RECORD["cumulative_refit_s"] = {
        "incremental": fast_refit_s,
        "scratch": slow_refit_s,
    }
    _RECORD["refit_speedup"] = speedup
    _RECORD["active_wall_s"] = {
        "incremental": fast_wall,
        "scratch": slow_wall,
    }

    # The incremental path must change wall time only, never numbers.
    assert fast.refits_incremental >= 1
    assert slow.refits_incremental == 0
    assert len(fast.history) == len(slow.history)
    for a, b in zip(fast.history, slow.history):
        if a.holdout_rmse_dbm is None:
            assert b.holdout_rmse_dbm is None
        else:
            assert abs(a.holdout_rmse_dbm - b.holdout_rmse_dbm) <= 1e-9

    # The ≥3x acceptance floor needs a host with real cores to be
    # physical; smaller hosts record the honest measured ratio.
    if not QUICK and (os.cpu_count() or 1) >= 4:
        assert speedup >= 3.0, f"expected >=3x cumulative refit, got {speedup:.2f}x"


def test_sweep_scenario_cache_speedup(tmp_path_factory):
    """Serial sweep wall, scenario cache off vs cold-cache on."""
    if QUICK:
        spec = JobSetSpec(
            scenarios=("condo",),
            seeds=(1,),
            predictors=("knn", "idw"),
            acquisitions=("active",),
            resolutions=(0.8,),
            base=_BASE,
        )
    else:
        spec = JobSetSpec(
            scenarios=("condo", "generated:room-grid?floors=1&seed=5"),
            seeds=(1, 2),
            predictors=("knn", "idw", "baseline"),
            acquisitions=("active",),
            resolutions=(0.5,),
            base=_BASE,
        )
    _RECORD["sweep_jobs"] = spec.count
    _RECORD["sweep_unique_campaigns"] = len(spec.scenarios) * len(spec.seeds)

    old = os.environ.get("REPRO_SCENARIO_CACHE")
    cold_store = ArtifactStore(tmp_path_factory.mktemp("refit-nocache"))
    try:
        os.environ["REPRO_SCENARIO_CACHE"] = "0"
        t0 = time.perf_counter()
        uncached = run_jobset(spec, cold_store, workers=0)
        uncached_wall_s = time.perf_counter() - t0
    finally:
        if old is None:
            os.environ.pop("REPRO_SCENARIO_CACHE", None)
        else:
            os.environ["REPRO_SCENARIO_CACHE"] = old
    assert uncached.built == spec.count and uncached.failed == 0

    default_cache().clear()
    warm_store = ArtifactStore(tmp_path_factory.mktemp("refit-cache"))
    t0 = time.perf_counter()
    cached = run_jobset(spec, warm_store, workers=0)
    cached_wall_s = time.perf_counter() - t0
    assert cached.built == spec.count and cached.failed == 0

    stats = default_cache().stats()
    speedup = uncached_wall_s / cached_wall_s
    print(
        f"\n{spec.count} cells over {_RECORD['sweep_unique_campaigns']} worlds: "
        f"cache off {uncached_wall_s:.1f}s, on {cached_wall_s:.1f}s "
        f"-> {speedup:.2f}x ({stats['campaign_hits']} campaign hits)"
    )
    _RECORD["sweep_wall_s"] = {"cache_off": uncached_wall_s, "cache_on": cached_wall_s}
    _RECORD["sweep_speedup"] = speedup
    _RECORD["sweep_cache_stats"] = stats

    # The cache changes wall time only, never bytes.
    off = {r["digest"]: r["content_hash"] for r in cold_store.list()}
    on = {r["digest"]: r["content_hash"] for r in warm_store.list()}
    assert off == on, "cached store differs from uncached store"
    _RECORD["stores_byte_identical"] = True
    assert stats["campaign_builds"] == _RECORD["sweep_unique_campaigns"]
    assert stats["campaign_hits"] == spec.count - stats["campaign_builds"]

    if not QUICK and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >=2x sweep wall, got {speedup:.2f}x"


def test_emit_perf_record():
    """Write BENCH_online_refit.json (runs last: depends on the others)."""
    out = Path(__file__).resolve().parent.parent / "BENCH_online_refit.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
