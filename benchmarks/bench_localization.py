"""TXT-LOC + ABL-ANCHORS — UWB localization accuracy.

Paper §II-B: ~9 cm hovering accuracy with 6 anchors (Chekuri & Won);
at least 6 anchors advised; TDoA slightly better than TWR and able to
serve multiple tags.  The bench sweeps anchor count × mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import table
from repro.uwb import LocalizationMode, corner_layout, evaluate_hovering_accuracy


@pytest.fixture(scope="module")
def sweep_results(demo_scenario):
    layout = corner_layout(demo_scenario.flight_volume)
    rng = np.random.default_rng(17)
    hover = (1.87, 1.6, 1.0)
    results = {}
    for mode in (LocalizationMode.TWR, LocalizationMode.TDOA):
        for count in (4, 5, 6, 7, 8):
            results[(mode, count)] = evaluate_hovering_accuracy(
                layout.subset(count), mode, hover, rng, duration_s=12.0
            )
    return results


def test_localization_accuracy_sweep(benchmark, demo_scenario, sweep_results):
    """ABL-ANCHORS table; bench one full hovering evaluation."""
    layout = corner_layout(demo_scenario.flight_volume)
    rng = np.random.default_rng(3)

    benchmark(
        lambda: evaluate_hovering_accuracy(
            layout.subset(6), LocalizationMode.TWR, (1.87, 1.6, 1.0), rng,
            duration_s=6.0,
        )
    )

    print()
    print("=== hovering localization accuracy (mean / p95, cm) ===")
    rows = []
    for (mode, count), result in sorted(sweep_results.items()):
        rows.append(
            [
                mode,
                count,
                f"{result.mean_error_m * 100:.1f}",
                f"{result.p95_error_m * 100:.1f}",
            ]
        )
    print(table(["mode", "anchors", "mean cm", "p95 cm"], rows))

    # Paper anchor: ~9 cm with 6 anchors (TWR, hovering).
    twr6 = sweep_results[(LocalizationMode.TWR, 6)]
    assert 0.04 < twr6.mean_error_m < 0.15

    # More anchors help (4 -> 8 must not degrade).
    for mode in (LocalizationMode.TWR, LocalizationMode.TDOA):
        four = sweep_results[(mode, 4)].mean_error_m
        eight = sweep_results[(mode, 8)].mean_error_m
        assert eight <= four * 1.2


def test_annotation_error_in_campaign(benchmark, campaign_result):
    """Location annotation error of the actual campaign samples."""

    def stats():
        errors = np.asarray(campaign_result.log.annotation_error_m())
        return float(errors.mean()), float(np.percentile(errors, 95))

    mean_error, p95_error = benchmark(stats)
    print()
    print(
        f"sample annotation error: mean {mean_error * 100:.1f} cm, "
        f"p95 {p95_error * 100:.1f} cm (decimeter-level claim: §II-B)"
    )
    assert mean_error < 0.12
    assert p95_error < 0.25
