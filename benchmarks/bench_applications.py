"""Downstream REM applications (§I motivations), quantified.

The paper motivates REMs with localization, relay placement and
network planning.  These benches measure the generated REM doing those
jobs: fingerprinting localization accuracy and dark-region analysis,
plus the end-to-end radio-shutdown ablation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_rem, evaluate_fingerprinting
from repro.core.fingerprinting import FingerprintLocalizer
from repro.core.predictors import KnnRegressor
from repro.station import (
    CampaignConfig,
    ClientConfig,
    Mission,
    WaypointPlan,
    plan_demo_mission,
    run_campaign,
)


@pytest.fixture(scope="module")
def campaign_rem(campaign_result, preprocessed):
    counts = preprocessed.dataset.samples_per_mac()
    top_macs = sorted(counts, key=counts.get, reverse=True)[:12]
    model = KnnRegressor(n_neighbors=16, onehot_scale=3.0).fit(preprocessed.train)
    return build_rem(
        model,
        preprocessed.dataset,
        campaign_result.scenario.flight_volume,
        resolution_m=0.3,
        macs=top_macs,
    )


def test_fingerprint_localization(benchmark, campaign_result, campaign_rem):
    """§I use case: the REM as a fingerprinting database."""
    localizer = FingerprintLocalizer(campaign_rem)
    rng = np.random.default_rng(23)

    evaluation = benchmark.pedantic(
        lambda: evaluate_fingerprinting(
            localizer,
            campaign_result.scenario.environment,
            campaign_result.scenario.flight_volume,
            rng,
            n_queries=80,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"fingerprinting over {localizer.database_size} reference points: "
        f"mean {evaluation.mean_error_m:.2f} m, median "
        f"{evaluation.median_error_m:.2f} m, p95 {evaluation.p95_error_m:.2f} m"
    )
    # Better than blind guessing in a 3.7 x 3.2 x 2.1 m volume (~1.9 m).
    assert evaluation.mean_error_m < 1.6


def test_coverage_analysis(benchmark, campaign_rem):
    """§I use case: coverage and dark-region queries on the REM."""

    def analyse():
        return {
            threshold: campaign_rem.dark_fraction(threshold)
            for threshold in (-80.0, -70.0, -60.0, -50.0, -40.0)
        }

    fractions = benchmark(analyse)
    print()
    print("=== dark-volume fraction vs service threshold ===")
    for threshold, fraction in fractions.items():
        print(f"  {threshold:6.0f} dBm -> {fraction:6.1%}")
    values = list(fractions.values())
    assert values == sorted(values), "dark fraction must grow with the threshold"


def test_radio_shutdown_ablation(benchmark, demo_scenario):
    """ABL-RADIO end-to-end: the same mission with the radio left on."""
    full = plan_demo_mission(demo_scenario)
    conf, plan = full.assignments[0]
    mission = Mission()
    mission.add(conf, WaypointPlan(waypoints=plan.waypoints[:6]))

    def run_both():
        clean = run_campaign(scenario=demo_scenario, mission=mission)
        jammed = run_campaign(
            scenario=demo_scenario,
            mission=mission,
            config=CampaignConfig(client=ClientConfig(disable_radio_shutdown=True)),
        )
        return clean, jammed

    clean, jammed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    clean_samples = clean.reports[0].samples_collected
    jammed_samples = jammed.reports[0].samples_collected
    print()
    print(
        f"6-waypoint mission: {clean_samples} samples with radio-off scans, "
        f"{jammed_samples} with the radio left on "
        f"({1 - jammed_samples / clean_samples:.0%} lost to self-interference)"
    )
    assert jammed_samples < clean_samples
