"""BENCH-REM-ENGINE — the batched REM query engine on the demo scenario.

Times the two hot paths the engine refactor vectorized:

* ``build_rem`` — one batched ``predict_mac_grid`` call for every MAC
  of the demo campaign (vs the seed's one full lattice pass per MAC);
* ``query_many`` / ``strongest_ap_many`` — vectorized trilinear reads.

Emits ``BENCH_rem_engine.json`` at the repo root as the perf record
anchoring the engine's trajectory, including the measured speedup of
the batched build over the per-MAC legacy loop.  ``REPRO_BENCH_QUICK=1``
(the CI smoke configuration) coarsens the lattice and relaxes the
speedup floor; the emitted record carries a ``quick`` flag so smoke
artifacts are never mistaken for real perf records.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.dataset import REMDataset
from repro.core.predictors import KnnRegressor
from repro.core.rem import build_rem

#: The paper's tuned configuration (§III-B best performer).
TUNED = dict(n_neighbors=16, weights="distance", p=2.0, onehot_scale=3.0)
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
RESOLUTION_M = 0.5 if QUICK else 0.25
#: Smaller lattices amortize less BLAS work per python-loop iteration,
#: so the smoke floor is looser than the full-protocol one.
MIN_SPEEDUP = 2.0 if QUICK else 5.0

_RECORD: dict = {"quick": QUICK}


@pytest.fixture(scope="module")
def fitted_model(preprocessed):
    return KnnRegressor(**TUNED).fit(preprocessed.train)


@pytest.fixture(scope="module")
def demo_rem(fitted_model, preprocessed, campaign_result):
    return build_rem(
        fitted_model,
        preprocessed.dataset,
        campaign_result.scenario.flight_volume,
        resolution_m=RESOLUTION_M,
    )


def _legacy_per_mac_build(model, dataset, volume):
    """The seed's build loop: one full-lattice predict per MAC."""
    from repro.core.rem import RadioEnvironmentMap, RemGrid

    grid = RemGrid(volume=volume, resolution_m=RESOLUTION_M)
    rem = RadioEnvironmentMap(grid, dataset.mac_vocabulary)
    points = grid.points()
    n = len(points)
    for index, mac in enumerate(dataset.mac_vocabulary):
        query = REMDataset(
            positions=points,
            mac_indices=np.full(n, index, dtype=int),
            channels=np.ones(n, dtype=int),
            rssi_dbm=np.zeros(n),
            mac_vocabulary=dataset.mac_vocabulary,
        )
        rem.set_field(mac, model.predict(query).reshape(grid.shape))
    return rem


def test_build_rem_batched(benchmark, fitted_model, preprocessed, campaign_result):
    """One-shot batched REM build over every campaign MAC."""
    volume = campaign_result.scenario.flight_volume
    rem = benchmark(
        lambda: build_rem(
            fitted_model, preprocessed.dataset, volume, resolution_m=RESOLUTION_M
        )
    )
    assert len(rem.macs) == preprocessed.dataset.n_macs
    _RECORD["build_rem_s"] = float(benchmark.stats.stats.mean)
    _RECORD["n_macs"] = int(preprocessed.dataset.n_macs)
    _RECORD["lattice_shape"] = list(rem.grid.shape)
    _RECORD["lattice_points"] = int(rem.grid.n_points)


def test_build_rem_speedup_vs_per_mac(fitted_model, preprocessed, campaign_result):
    """The batched build must beat the seed's per-MAC loop >= 5x."""
    volume = campaign_result.scenario.flight_volume

    t0 = time.perf_counter()
    batched = build_rem(
        fitted_model, preprocessed.dataset, volume, resolution_m=RESOLUTION_M
    )
    batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    legacy = _legacy_per_mac_build(fitted_model, preprocessed.dataset, volume)
    legacy_s = time.perf_counter() - t0

    # Equivalence of the two paths over the full stacked tensor.
    np.testing.assert_allclose(
        batched.field_tensor(), legacy.field_tensor(), atol=1e-9, rtol=0.0
    )
    speedup = legacy_s / batched_s
    print(
        f"\nbatched {batched_s:.3f}s vs per-MAC {legacy_s:.3f}s "
        f"-> {speedup:.1f}x ({len(batched.macs)} MACs, "
        f"{batched.grid.n_points} lattice points)"
    )
    _RECORD["legacy_per_mac_s"] = legacy_s
    _RECORD["batched_s"] = batched_s
    _RECORD["speedup"] = speedup
    assert speedup >= MIN_SPEEDUP, f"batched build only {speedup:.2f}x faster"


def test_query_many_throughput(benchmark, demo_rem):
    """Vectorized trilinear reads: strongest AP over 10k random points."""
    rng = np.random.default_rng(63)
    lo = np.asarray(demo_rem.grid.volume.min_corner)
    hi = np.asarray(demo_rem.grid.volume.max_corner)
    points = rng.uniform(lo, hi, size=(10_000, 3))

    macs, rss = benchmark(lambda: demo_rem.strongest_ap_many(points))
    assert len(macs) == len(points)
    assert np.isfinite(rss).all()
    per_point = benchmark.stats.stats.mean / len(points)
    _RECORD["strongest_ap_many_points_per_s"] = float(1.0 / per_point)
    _RECORD["query_points"] = len(points)


def test_emit_perf_record(demo_rem):
    """Write BENCH_rem_engine.json (runs last: depends on the others)."""
    _RECORD.setdefault("resolution_m", RESOLUTION_M)
    _RECORD["tuned_knn"] = TUNED
    out = Path(__file__).resolve().parent.parent / "BENCH_rem_engine.json"
    out.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"\nperf record written to {out}")
    assert out.exists()
