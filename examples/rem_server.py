#!/usr/bin/env python3
"""Serve a REM over HTTP and run a scripted client session against it.

The "build once, persist, serve many" loop end to end: a JSON
:class:`~repro.serve.RemJobSpec` describes a small active-sampling
build in a procedurally generated building; ``run_job`` builds the
artifact into a temporary :class:`~repro.serve.ArtifactStore` (and
proves the second run is a cache hit); a
:class:`~repro.serve.RemService` plus the stdlib HTTP front end then
serve it on an ephemeral port while a urllib client walks the API —
health check, artifact listing, batched queries, strongest-AP lookups,
coverage and dark-region planning — and cross-checks every served
answer against the direct in-process map.  A final segment re-saves
the artifact into an mmap-able ``npy`` store and serves it from a
2-worker pre-forked :class:`~repro.serve.RemCluster`, driving the
``/v1/batch`` endpoint and draining the workers gracefully.

Expected runtime: ~3 s (pass ``--quick`` for a faster smoke run).

Prints the job provenance, the cache-hit proof, each HTTP response
summary and the served-vs-direct agreement bound.

Usage::

    python examples/rem_server.py [--quick]
"""

import json
import sys
import tempfile
import threading
import urllib.request

import numpy as np

from repro.serve import (
    ArtifactStore,
    RemCluster,
    RemJobSpec,
    RemService,
    create_server,
    run_job,
)


def http_json(url, payload=None):
    """One JSON round trip (GET, or POST when a payload is given)."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method="GET" if data is None else "POST"
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def main() -> None:
    """Build, persist, serve and query one REM artifact."""
    quick = "--quick" in sys.argv[1:]
    budget = 8 if quick else 16
    spec = RemJobSpec(
        scenario="generated:room-grid?floors=1&width_m=12&depth_m=9&seed=4",
        acquisition="active",
        active={
            "seed_waypoints": 8,
            "batch_size": 8,
            "budget_waypoints": budget,
        },
        tune=False,
        min_samples_per_mac=2,
        resolution_m=0.5,
    )
    print(f"job spec digest {spec.digest()[:12]} (budget {budget} waypoints)")

    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        artifact = run_job(spec, store)
        provenance = artifact.provenance
        print(
            f"built   : {provenance['samples']} samples, test RMSE "
            f"{provenance['test_rmse_dbm']:.2f} dBm, "
            f"{provenance['n_macs']} APs in "
            f"{provenance['wall_time_s']:.2f} s"
        )
        again = run_job(spec, store)
        print(f"re-run  : cache hit = {again.cache_hit} (no campaign re-flown)")

        service = RemService(store, capacity=2)
        server = create_server(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{host}:{port}"
        try:
            health = http_json(f"{base}/healthz")
            print(f"healthz : {health['status']}, {health['artifacts']} artifact(s)")

            listing = http_json(f"{base}/v1/artifacts")["artifacts"]
            print(f"listing : {[r['digest'][:12] for r in listing]}")

            rng = np.random.default_rng(5)
            lo = np.asarray(artifact.rem.grid.volume.min_corner)
            hi = np.asarray(artifact.rem.grid.volume.max_corner)
            points = rng.uniform(lo, hi, size=(6, 3)).tolist()
            query_url = f"{base}/v1/artifacts/{artifact.digest}/query"

            served = http_json(
                query_url, {"type": "query", "points": points}
            )
            direct = artifact.rem.query_many(points)
            gap = float(np.abs(np.asarray(served["values"]) - direct).max())
            print(
                f"query   : {len(points)} points x {len(served['macs'])} "
                f"APs, served ≡ direct (max gap {gap:.1e} dB)"
            )

            strongest = http_json(
                query_url, {"type": "strongest_ap", "points": points}
            )
            print(
                f"handover: strongest AP at p0 is {strongest['macs'][0]} "
                f"at {strongest['rss_dbm'][0]:.1f} dBm"
            )

            coverage = http_json(
                query_url, {"type": "coverage", "threshold_dbm": -70.0}
            )
            best = max(coverage["by_mac"].items(), key=lambda kv: kv[1])
            print(
                f"coverage: best AP {best[0]} covers {best[1]:.1%} "
                f"above -70 dBm"
            )

            dark = http_json(
                query_url,
                {"type": "dark_regions", "threshold_dbm": -60.0, "max_points": 5},
            )
            print(
                f"dark    : {dark['dark_fraction']:.1%} of the volume below "
                f"-60 dBm ({len(dark['points'])} sample points shown)"
            )
            assert gap < 1e-9
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

        # -- the same artifact from a pre-forked worker cluster -------
        shared = ArtifactStore(f"{root}/shared", "npy")  # mmap-able
        shared.save(artifact)
        cluster = RemCluster(shared.root, workers=2)
        cluster.start()
        try:
            host, port = cluster.address
            base = f"http://{host}:{port}"
            health = http_json(f"{base}/healthz")
            print(
                f"cluster : {len(cluster.worker_pids())} workers on "
                f"{base}, healthz {health['status']}"
            )
            batch = http_json(
                f"{base}/v1/batch",
                [
                    {"digest": artifact.digest, "type": "query", "points": points},
                    {
                        "digest": artifact.digest,
                        "type": "coverage",
                        "threshold_dbm": -70.0,
                    },
                ],
            )["responses"]
            batch_gap = float(
                np.abs(np.asarray(batch[0]["values"]) - direct).max()
            )
            print(
                f"batch   : {len(batch)} mixed requests in one round "
                f"trip, query ≡ direct (max gap {batch_gap:.1e} dB)"
            )
            assert batch_gap < 1e-9
        finally:
            exit_codes = cluster.stop(graceful=True)
        print(f"drained : worker exit codes {exit_codes}")
    print("servers stopped; artifact store was temporary — done")


if __name__ == "__main__":
    main()
