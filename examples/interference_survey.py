#!/usr/bin/env python3
"""Self-interference survey: why the Crazyradio must be off during scans.

Reproduces the paper's Fig. 5 experiment: a stationary receiver scans
for APs with the control radio parked at each of six frequencies across
its 2400-2525 MHz range, and with the radio off.  The survey shows the
degradation is significant at *every* frequency — motivating the
radio-off scan windows of §II-C.

Expected runtime: under 1 s.  Prints the reproduced Fig. 5 table
(detections and mean RSS per radio frequency vs. radio off); writes
no files.

Usage::

    python examples/interference_survey.py [seed]
"""

import sys

from repro.analysis import figure5, render_figure5


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 63
    print(f"running the Fig. 5 interference survey (seed {seed})...")
    result = figure5(seed=seed, scans_per_setting=3)

    print()
    print(render_figure5(result))

    off_total = result.total("off")
    print()
    print(f"radio off: {off_total:.1f} APs detected on average")
    for label in result.series:
        if label == "off":
            continue
        on_total = result.total(label)
        loss = 1.0 - on_total / off_total
        print(f"radio at {label}: {on_total:5.1f} APs  ({loss:.0%} lost)")

    worst = min(
        (label for label in result.series if label != "off"),
        key=lambda l: result.total(l),
    )
    print()
    print(f"worst setting: {worst} — turning the radio off during scans")
    print("recovers the full AP population, at the cost of buffering scan")
    print("results in the (enlarged) CRTP TX queue until the link returns.")


if __name__ == "__main__":
    main()
