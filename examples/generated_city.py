#!/usr/bin/env python3
"""A procedural city block: generate, survey and map three buildings.

Demonstrates the scenario generator end to end.  Three `BuildingSpec`s
— a residential room-grid block, a commercial corridor-spine tower and
an industrial open-plan hall — are expanded into full multi-floor RF
worlds, and each one is pushed through the complete toolchain: an
uncertainty-driven active campaign, an online model refit, and a REM
build.  Along the way the spec round-trips through JSON and through
its self-describing registry name (``generated:<template>?...``),
which is all a colleague needs to rebuild the identical world.

Expected runtime: ~10 s (pass ``--quick`` for a ~3 s smoke run).

Prints, per building: the generated geometry (floors/rooms/walls/APs),
the campaign yield, the holdout RMSE and the REM dark fraction; ends
with the three registry names that reproduce the experiment.

Usage::

    python examples/generated_city.py [--quick]
"""

import sys

from repro.core import build_rem
from repro.core.predictors import KnnRegressor
from repro.radio import BuildingSpec, build_scenario, generate_building
from repro.station import ActiveSamplingConfig, run_active_campaign

#: The city block: one spec per construction style.
SPECS = [
    BuildingSpec(
        template="room-grid",
        palette="residential",
        floors=2,
        width_m=16.0,
        depth_m=12.0,
        ap_policy="per-room",
        clutter_per_floor=2,
        seed=21,
    ),
    BuildingSpec(
        template="corridor-spine",
        palette="commercial",
        floors=3,
        width_m=20.0,
        depth_m=14.0,
        ap_policy="ceiling-grid",
        n_ssids=4,
        seed=22,
    ),
    BuildingSpec(
        template="open-plan",
        palette="industrial",
        floors=1,
        width_m=18.0,
        depth_m=12.0,
        ap_policy="perimeter",
        ap_spacing_m=7.0,
        seed=23,
    ),
]


def survey(spec: BuildingSpec, budget: int) -> str:
    """Generate one building, fly it, map it; return its registry name."""
    # The JSON form is the archival artifact; prove it rebuilds the
    # same world before flying.
    scenario = generate_building(BuildingSpec.from_json(spec.to_json()))
    meta = scenario.metadata
    print(f"\n=== {meta['name']}")
    print(
        f"built   : {meta['floors']} floor(s), "
        f"{sum(meta['rooms_per_floor'])} rooms, {meta['n_walls']} walls, "
        f"{meta['n_aps']} APs under {meta['n_ssids']} SSIDs "
        f"({spec.palette} palette, {spec.ap_policy} APs)"
    )

    active = ActiveSamplingConfig(
        seed_waypoints=min(8, budget),
        batch_size=6,
        budget_waypoints=budget,
        predictor_factory=lambda: KnnRegressor(
            n_neighbors=4, weights="distance", p=2.0, onehot_scale=3.0
        ),
    )
    result = run_active_campaign(scenario=scenario, active=active)
    rmse = (
        "n/a"
        if result.final_rmse_dbm is None
        else f"{result.final_rmse_dbm:.2f} dB"
    )
    print(
        f"campaign: {result.waypoints_flown} waypoints "
        f"({result.stop_reason}), {len(result.log)} samples, "
        f"{len(result.log.macs())} MACs, holdout RMSE {rmse}"
    )

    builder = result.builder
    rem = build_rem(
        builder.model, builder.dataset(), scenario.flight_volume, resolution_m=0.5
    )
    print(
        f"REM     : {len(rem.macs)} APs mapped, "
        f"dark fraction below -70 dBm: {rem.dark_fraction(-70.0):.1%}"
    )

    # The name alone rebuilds the identical environment.
    name = spec.to_name()
    rebuilt = build_scenario(name)
    assert len(rebuilt.environment.walls) == meta["n_walls"]
    return name


def main() -> None:
    """Survey the whole block and print the reproducible names."""
    quick = "--quick" in sys.argv[1:]
    budget = 8 if quick else 18
    names = [survey(spec, budget) for spec in SPECS]
    print("\nreproduce any of these worlds from the name alone:")
    for name in names:
        print(f"  python -m repro --scenario '{name}' campaign --active")


if __name__ == "__main__":
    main()
