#!/usr/bin/env python3
"""Model comparison on campaign data: the paper's Fig. 8, reproduced.

Runs (or loads) a campaign, applies the §III-B preprocessing, tunes the
k-NN by grid search, trains every estimator family, and prints the RMSE
ladder next to the paper's published values.

Expected runtime: ~40 s (the §III-B grid search dominates).  Prints
the grid-search winner and the per-model RMSE table; writes no files.

Usage::

    python examples/model_comparison.py [campaign.csv]
"""

import sys

from repro.analysis import figure8, render_figure8
from repro.core import DEFAULT_KNN_GRID, preprocess
from repro.core.predictors import KnnRegressor, grid_search
from repro.station import SampleLog, run_campaign


def main() -> None:
    if len(sys.argv) > 1:
        print(f"loading samples from {sys.argv[1]}...")
        log = SampleLog.load_csv(sys.argv[1])
    else:
        print("no CSV given — flying a fresh campaign (simulated)...")
        log = run_campaign().log

    prep = preprocess(log)
    print(
        f"\npreprocessing: {prep.retained_samples} retained, "
        f"{prep.dropped_samples} dropped over {prep.dropped_macs} rare MACs "
        f"(paper: 2565 retained, 131 dropped)"
    )

    print("\ngrid-searching the k-NN hyper-parameters (4-fold CV)...")
    search = grid_search(KnnRegressor(), prep.train, DEFAULT_KNN_GRID)
    print(f"winner: {search.best_params}")
    for cv in search.ranking()[:5]:
        print(f"  {cv.params} -> {cv.mean_rmse:.4f} dBm")

    print("\nscoring all estimator families on the held-out test set...")
    result = figure8(log)
    print()
    print(render_figure8(result))

    name, value = result.best()
    print()
    print(f"best estimator: {name} at {value:.4f} dBm")
    print(f"ladder matches the paper: {result.ladder_matches_paper()}")


if __name__ == "__main__":
    main()
