#!/usr/bin/env python3
"""Quickstart: generate a fine-grained 3-D indoor REM in one call.

Runs the full toolchain of the paper — a simulated 2-UAV measurement
campaign in the demo apartment, preprocessing, model fitting, and REM
construction — then queries the map.

Expected runtime: ~3 s.  Prints the campaign/REM summary (samples,
test RMSE, APs mapped), a batched query along the room diagonal and
the dark-volume fraction; writes no files.

Usage::

    python examples/quickstart.py [scenario]

where ``scenario`` is a registered name (condo, office, warehouse; the
demo condo by default).
"""

import sys

from repro.serve import RemJobSpec, run_job


def main() -> None:
    scenario = sys.argv[1] if len(sys.argv) > 1 else "condo"
    print(f"Flying the 72-waypoint {scenario!r} campaign (simulated)...")
    artifact = run_job(
        RemJobSpec(
            scenario=scenario,
            tune=False,
            resolution_m=0.25,
            with_uncertainty=False,
        )
    )
    result = artifact.result

    summary = result.summary()
    print()
    print(f"samples collected : {summary['samples']:.0f}")
    print(f"samples retained  : {summary['retained']:.0f}")
    print(f"test RMSE         : {summary['test_rmse_dbm']:.2f} dBm")
    print(f"APs mapped        : {summary['rem_macs']:.0f}")

    rem = result.rem
    center = tuple(result.scenario.flight_volume.center)
    mac, rss = rem.strongest_ap(center)
    print()
    print(f"strongest AP at the room center: {mac} at {rss:.1f} dBm")

    print()
    print("predicted RSS of that AP along the room diagonal (one batched query):")
    sx, sy, sz = result.scenario.flight_volume.size
    diagonal = [(t * sx, t * sy, t * sz) for t in (0.1, 0.3, 0.5, 0.7, 0.9)]
    rss_along = rem.query_many(diagonal, [mac])[:, 0]
    for point, value in zip(diagonal, rss_along):
        print(
            f"  ({point[0]:.2f}, {point[1]:.2f}, {point[2]:.2f}) -> "
            f"{value:6.1f} dBm"
        )

    dark = rem.dark_fraction(-70.0)
    print()
    print(f"volume fraction with no AP above -70 dBm: {dark:.1%}")


if __name__ == "__main__":
    main()
