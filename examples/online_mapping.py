#!/usr/bin/env python3
"""Online REM building: watch the map converge while the fleet flies.

Replays the demo campaign scan by scan through the incremental builder,
printing the held-out RMSE after every refit — the live view an
operator would watch to decide "the map is good enough, land early".

Expected runtime: ~3 s.  Prints one holdout-RMSE line per refit and a
final convergence summary; writes no files.

Usage::

    python examples/online_mapping.py
"""

from repro.station import OnlineRemBuilder, run_campaign
from repro.wifi import ScanRecord


def main() -> None:
    print("flying the demo campaign (simulated)...")
    campaign = run_campaign()

    by_scan = {}
    for sample in campaign.log:
        key = (sample.uav_name, sample.waypoint_index)
        by_scan.setdefault(key, []).append(sample)

    builder = OnlineRemBuilder(refit_every_scans=8, holdout_fraction=0.25, seed=3)
    print(f"replaying {len(by_scan)} scans through the online builder:\n")
    print(f"{'scans':>6} {'samples':>8} {'macs':>5} {'holdout RMSE':>13}")
    for key in sorted(by_scan):
        samples = by_scan[key]
        records = [
            ScanRecord(ssid=s.ssid, rssi_dbm=s.rssi_dbm, mac=s.mac, channel=s.channel)
            for s in samples
        ]
        snapshot = builder.add_scan(samples[0].position, records)
        if snapshot is not None:
            rmse_text = (
                f"{snapshot.holdout_rmse_dbm:10.3f} dB"
                if snapshot.holdout_rmse_dbm is not None
                else "        n/a"
            )
            print(
                f"{snapshot.scans_ingested:6d} {snapshot.samples_ingested:8d} "
                f"{snapshot.distinct_macs:5d} {rmse_text}"
            )

    first = next(s for s in builder.history if s.holdout_rmse_dbm is not None)
    last = builder.history[-1]
    print()
    print(
        f"holdout RMSE went from {first.holdout_rmse_dbm:.2f} dB after "
        f"{first.scans_ingested} scans to {last.holdout_rmse_dbm:.2f} dB after "
        f"{last.scans_ingested}."
    )
    print("an operator could have stopped flying once the curve flattened —")
    print("see `python -m repro density` for the systematic version.")


if __name__ == "__main__":
    main()
