#!/usr/bin/env python3
"""Technology-agnostic REM sampling: Wi-Fi and BLE on the same UAV stack.

§II-A claims any receiver of suitable size/weight integrates through
the four-instruction driver.  This example carries the BLE observer on
the simulated Crazyflie and runs the identical firmware scan task —
radio-off window, CRTP result streaming, location annotation — on a
second technology, then builds a small BLE REM.

Expected runtime: ~2 s.  Prints the BLE scan statistics next to the
Wi-Fi baseline and a BLE REM summary; writes no files.

Usage::

    python examples/multi_technology.py
"""

import numpy as np

from repro import build_demo_scenario
from repro.core import REMDataset, build_rem
from repro.core.predictors import KnnRegressor
from repro.link import Crazyradio, CrazyradioLink, RadioConfig
from repro.sim import Simulator, Timeout, spawn
from repro.uav import Crazyflie, FirmwareConfig, UavConfig
from repro.uav import app_protocol as proto
from repro.uwb import corner_layout
from repro.wifi import BleObserverModule, BleReceiverDriver, generate_ble_population


def main() -> None:
    scenario = build_demo_scenario()
    rng = np.random.default_rng(21)
    devices = generate_ble_population(
        14, rng, center=(2.0, 1.0, 1.0), spread_m=(4.0, 3.5, 1.5)
    )
    print(f"BLE population: {len(devices)} advertisers near the flat")

    sim = Simulator()
    firmware = FirmwareConfig.paper_modified()
    radio = Crazyradio(scenario.environment, RadioConfig())
    link = CrazyradioLink(sim, radio, uav_tx_queue_capacity=firmware.crtp_tx_queue_size)
    module = BleObserverModule(scenario.environment, devices, rng)
    uav = Crazyflie(
        sim,
        scenario.environment,
        corner_layout(scenario.flight_volume),
        link,
        firmware,
        scenario.streams.fork("ble-demo"),
        config=UavConfig(name="BLE-UAV", start_position=(0.3, 0.3, 0.0)),
        receiver_module=module,
        receiver_driver=BleReceiverDriver(module),
    )

    waypoints = scenario.flight_volume.grid(3, 3, 2, margin=0.4)
    samples = []

    def pilot():
        radio.turn_on()
        link.station_send(proto.encode(proto.Takeoff(0.5)))
        yield Timeout(2.0)
        for waypoint in waypoints:
            elapsed = 0.0
            while elapsed < 4.0:
                link.station_send(proto.encode(proto.Goto(*waypoint)))
                yield Timeout(0.2)
                elapsed += 0.2
            link.station_send(proto.encode(proto.StartScan()))
            yield Timeout(0.15)
            radio.turn_off()
            yield Timeout(3.5)
            radio.turn_on()
            for packet in link.station_poll():
                message = proto.decode(packet)
                if isinstance(message, proto.ScanRecordMsg):
                    samples.append((tuple(waypoint), message))
        link.station_send(proto.encode(proto.Land()))
        yield Timeout(2.0)
        radio.turn_off()

    spawn(sim, pilot())
    sim.run()

    print(f"collected {len(samples)} BLE samples over {len(waypoints)} waypoints")
    macs = sorted({m.mac for _, m in samples})
    names = sorted({m.ssid for _, m in samples})
    print(f"observed {len(macs)} devices: {', '.join(names[:6])}...")

    # Build a small BLE REM with the same ML machinery.
    vocabulary = tuple(macs)
    index = {mac: i for i, mac in enumerate(vocabulary)}
    positions = np.array([p for p, _ in samples])
    dataset = REMDataset(
        positions=positions,
        mac_indices=np.array([index[m.mac] for _, m in samples]),
        channels=np.array([1 for _ in samples]),
        rssi_dbm=np.array([float(m.rssi_dbm) for _, m in samples]),
        mac_vocabulary=vocabulary,
    )
    model = KnnRegressor(n_neighbors=8, onehot_scale=3.0).fit(dataset)
    rem = build_rem(model, dataset, scenario.flight_volume, resolution_m=0.5,
                    macs=vocabulary[:3])
    center = tuple(scenario.flight_volume.center)
    print()
    print("BLE REM queries at the room center:")
    for mac in rem.macs:
        print(f"  {mac}: {rem.query(center, mac):6.1f} dBm")
    print()
    print("same toolchain, different radio technology — §II-A holds.")


if __name__ == "__main__":
    main()
