#!/usr/bin/env python3
"""A full fleet campaign, waypoint by waypoint, with archival.

Plans the paper's 72-waypoint mission, splits it across two UAVs, flies
them sequentially (scan windows with the radio down, EKF-annotated
samples), then prints the §III-A statistics and the Fig. 6/7 views and
archives the samples to CSV.

Expected runtime: ~3 s.  Prints per-UAV sample counts and the
per-location views; writes the full sample log to the CSV path given
on the command line (default ``campaign_samples.csv``).

Usage::

    python examples/fleet_campaign.py [output.csv]
"""

import sys

from repro import build_demo_scenario
from repro.analysis import campaign_stats, figure6, figure7, render_figure7
from repro.station import plan_demo_mission, run_campaign


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "campaign_samples.csv"

    scenario = build_demo_scenario()
    mission = plan_demo_mission(scenario)
    for config, plan in mission.assignments:
        print(
            f"{config.name}: {len(plan)} waypoints on {config.radio_address}, "
            f"expected ≥ {plan.expected_duration_s():.0f} s"
        )

    print("\nflying (simulated)...")
    result = run_campaign(scenario=scenario, mission=mission)

    stats = campaign_stats(result)
    print()
    print(f"total samples   : {stats.total_samples}  (paper: 2696)")
    for uav, count in sorted(stats.samples_by_uav.items()):
        active = stats.active_time_by_uav[uav]
        print(f"  {uav}: {count} samples in {active:.0f} s active")
    print(f"distinct MACs   : {stats.distinct_macs}  (paper: 73)")
    print(f"distinct SSIDs  : {stats.distinct_ssids}  (paper: 49)")
    print(f"mean RSS        : {stats.mean_rss_dbm:.1f} dBm  (paper: ≈ -73)")

    fig6 = figure6(result)
    print()
    print("samples per scanned location:")
    for uav, rows in fig6.per_location.items():
        counts = [c for _, c, _ in sorted(rows)]
        print(f"  {uav}: min {min(counts)}, max {max(counts)}")

    print()
    print(render_figure7(figure7(result)))

    result.log.save_csv(output)
    print(f"\nsamples archived to {output}")


if __name__ == "__main__":
    main()
