#!/usr/bin/env python3
"""Concurrent fleet acquisition: K drones, one uncertainty-driven map.

The paper flies its drones one at a time over a fixed lattice.  This
example runs the ``acquisition="fleet"`` path instead: the active
planner's waypoint batches are partitioned spatially across K drones
(balanced k-means regions, anti-collision separation enforced at
planning time), all K fly **at once** inside one simulation kernel,
and the timestamped scans merge deterministically into one online map.

It flies the same budget solo (K=1) and as a K-drone fleet, then shows
what concurrency buys: the same spend of waypoints at a fraction of
the simulated makespan — and a one-drone fleet reproducing the active
campaign sample for sample.

Expected runtime: ~5 s (~2 s with ``--quick``).  Writes the merged
fleet sample log to the CSV path given on the command line.

Usage::

    python examples/fleet_campaign.py [--quick] [output.csv]
"""

import sys

from repro import build_demo_scenario
from repro.analysis import render_active_trajectory
from repro.station import (
    ActiveSamplingConfig,
    FleetConfig,
    run_active_campaign,
    run_fleet_campaign,
)


def main() -> None:
    argv = sys.argv[1:]
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    output = paths[0] if paths else "fleet_samples.csv"

    n_drones = 2 if quick else 3
    active = ActiveSamplingConfig(
        seed_waypoints=6,
        batch_size=4,
        budget_waypoints=12 if quick else 24,
        lattice_nx=4,
        lattice_ny=3,
        lattice_nz=2,
    )
    scenario = build_demo_scenario()

    print(f"flying {active.budget_waypoints} waypoints solo (K=1)...")
    solo = run_fleet_campaign(
        scenario=scenario, fleet=FleetConfig(n_drones=1), active=active
    )
    print(
        f"  makespan {solo.duration_s:.0f} s simulated, "
        f"{len(solo.log)} samples, stop: {solo.stop_reason}"
    )

    print(f"\nsame budget as a {n_drones}-drone fleet...")
    fleet = run_fleet_campaign(
        scenario=scenario,
        fleet=FleetConfig(n_drones=n_drones, min_separation_m=0.5),
        active=active,
    )
    for round_ in fleet.rounds:
        tours = " + ".join(str(len(t)) for t in round_.tours)
        bumped = (
            f"  ({round_.dropped_waypoints} bumped by separation)"
            if round_.dropped_waypoints
            else ""
        )
        print(f"  round {round_.round_index}: tours {tours}{bumped}")
    print(render_active_trajectory(fleet.rounds))
    print(
        f"  makespan {fleet.duration_s:.0f} s simulated "
        f"({solo.duration_s / fleet.duration_s:.1f}x less flying time), "
        f"{len(fleet.log)} samples, stop: {fleet.stop_reason}"
    )

    # The determinism contract: a one-drone fleet IS the active
    # campaign — same RNG stream forks, same samples, same order.
    reference = run_active_campaign(scenario=scenario, active=active)
    identical = len(reference.log) == len(solo.log) and all(
        a == b for a, b in zip(reference.log, solo.log)
    )
    print(f"\nK=1 fleet ≡ active campaign: {identical}")

    fleet.log.save_csv(output)
    print(f"merged fleet samples archived to {output}")


if __name__ == "__main__":
    main()
