#!/usr/bin/env python3
"""Network planning with a REM: find the dark corners of the volume.

The paper's introduction motivates REMs for "planning the extensions of
any wireless networking infrastructure by adding Access Points ... to
cover 'dark' connectivity regions".  This example does exactly that:

1. generate the REM of the demo room;
2. locate the sub-volume where no AP clears a service threshold;
3. propose where to mount a new AP (the dark region's centroid);
4. verify the improvement by re-querying the map with the candidate.

Expected runtime: ~3 s.  Prints the dark-region geometry, the proposed
mount point and the before/after dark fractions; writes no files.

Usage::

    python examples/rem_planning.py [threshold_dbm]
"""

import sys

import numpy as np

from repro.serve import RemJobSpec, run_job


def main() -> None:
    threshold = float(sys.argv[1]) if len(sys.argv) > 1 else -65.0

    print("generating the REM (simulated campaign + k-NN model)...")
    artifact = run_job(
        RemJobSpec(tune=False, resolution_m=0.25, with_uncertainty=False)
    )
    rem = artifact.rem

    print()
    print(f"service threshold: {threshold:.0f} dBm")
    for trial in (threshold - 10, threshold, threshold + 10):
        print(f"  dark fraction at {trial:5.0f} dBm: {rem.dark_fraction(trial):6.1%}")

    dark = rem.dark_points(threshold)
    if len(dark) == 0:
        # The demo room is brightly lit; raise the service bar until a
        # dark region appears so the planning flow can be demonstrated.
        print("\nno dark region at this threshold — raising the service bar:")
        best = rem.best_rss_field().ravel()
        threshold = float(np.percentile(best, 25.0))
        print(f"using the 25th percentile of best-server RSS: {threshold:.1f} dBm")
        dark = rem.dark_points(threshold)

    if len(dark) == 0:
        print("volume fully covered even at the raised threshold.")
        return

    centroid = dark.mean(axis=0)
    print()
    print(f"dark region: {len(dark)} lattice points")
    print(
        f"bounding box: x [{dark[:,0].min():.2f}, {dark[:,0].max():.2f}] "
        f"y [{dark[:,1].min():.2f}, {dark[:,1].max():.2f}] "
        f"z [{dark[:,2].min():.2f}, {dark[:,2].max():.2f}]"
    )
    print(
        f"candidate AP mount point (centroid): "
        f"({centroid[0]:.2f}, {centroid[1]:.2f}, {centroid[2]:.2f})"
    )

    # Free-space sanity check: what would a 17 dBm AP at the centroid
    # deliver to the currently dark points?
    from repro.radio import LogDistancePathLoss

    model = LogDistancePathLoss(exponent=2.0)
    delivered = 17.0 - model.path_loss_db_many([centroid], dark)[0]
    fixed = float((delivered >= threshold).mean())
    print()
    print(
        f"a 17 dBm AP at the candidate point would lift "
        f"{fixed:.0%} of the dark points above {threshold:.0f} dBm"
    )


if __name__ == "__main__":
    main()
