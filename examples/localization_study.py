#!/usr/bin/env python3
"""UWB localization study: anchors, ranging modes, annotation quality.

Quantifies the design guidance of §II-B on the simulated LPS: at least
six anchors for robust decimeter accuracy, TDoA for multi-tag support
with slightly better filtered accuracy, and the resulting quality of
REM sample location annotation.

Expected runtime: ~3 s.  Prints the anchors x mode accuracy table and
the annotation-error summary of a campaign flight; writes no files.

Usage::

    python examples/localization_study.py
"""

import numpy as np

from repro import build_demo_scenario
from repro.analysis import table
from repro.station import run_campaign
from repro.uwb import LocalizationMode, corner_layout, evaluate_hovering_accuracy


def main() -> None:
    scenario = build_demo_scenario()
    layout = corner_layout(scenario.flight_volume)
    rng = np.random.default_rng(5)
    hover = (1.87, 1.6, 1.0)

    print("hovering accuracy vs anchor count and ranging mode")
    rows = []
    for mode in (LocalizationMode.TWR, LocalizationMode.TDOA):
        for count in (4, 6, 8):
            result = evaluate_hovering_accuracy(
                layout.subset(count), mode, hover, rng, duration_s=12.0
            )
            rows.append(
                [
                    mode,
                    count,
                    f"{result.mean_error_m * 100:.1f}",
                    f"{result.p95_error_m * 100:.1f}",
                ]
            )
    print(table(["mode", "anchors", "mean err (cm)", "p95 err (cm)"], rows))
    print("(paper §II-B: ~9 cm hovering accuracy with 6 anchors)")

    print()
    print("flying the demo campaign to measure annotation error in situ...")
    campaign = run_campaign(scenario=scenario)
    errors = np.asarray(campaign.log.annotation_error_m())
    print(
        f"location annotation error over {len(errors)} samples: "
        f"mean {errors.mean() * 100:.1f} cm, "
        f"p95 {np.percentile(errors, 95) * 100:.1f} cm"
    )
    print("consistent with the paper's decimeter-level claim.")


if __name__ == "__main__":
    main()
